//! Microbenchmark: solver query latency for the constraint shapes the
//! BGP handler produces (supports experiment F1 and the CPU-overhead model),
//! plus the one-shot vs incremental batched comparison on shared-prefix
//! candidate groups — the engine's sibling-negation workload.
//!
//! Set `DICE_BENCH_JSON=<path>` to write the incremental-vs-one-shot
//! comparison as a JSON baseline artifact (CI uploads `BENCH_solver.json`
//! for perf-trajectory tracking).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use dice_solver::{IncrementalSolver, Model, Solver, TermArena, TermId, Verdict};

/// Variables and constraints mimicking a deep policy-filter path: `DEPTH`
/// prefix constraints over `VARS` message fields, then one negation
/// candidate per prefix position — every candidate shares the prefix below
/// its branch, exactly like the engine's per-run candidate group.
const VARS: usize = 8;
const DEPTH: usize = 48;

struct GroupScenario {
    arena: TermArena,
    prefix: Vec<TermId>,
    candidates: Vec<TermId>,
    seed: Model,
}

fn group_scenario() -> GroupScenario {
    let mut arena = TermArena::new();
    let vars: Vec<_> = (0..VARS)
        .map(|i| arena.declare_var(format!("field{i}"), 32))
        .collect();
    let mut seed = Model::new();
    for (i, &v) in vars.iter().enumerate() {
        seed.set(v, (i as u64) * 1000 + 500);
    }
    let mut prefix = Vec::with_capacity(DEPTH);
    let mut candidates = Vec::with_capacity(DEPTH);
    for d in 0..DEPTH {
        let v = vars[d % VARS];
        let vt = arena.var(v);
        let bound = arena.int_const((d as u64) * 7 + 3, 32);
        // The taken side of branch d...
        prefix.push(arena.uge(vt, bound));
        // ...and the candidate negating it (what the engine asks for).
        candidates.push(arena.ult(vt, bound));
    }
    GroupScenario {
        arena,
        prefix,
        candidates,
        seed,
    }
}

/// Solves every candidate one-shot: each query re-preprocesses and
/// re-propagates its whole prefix — the PR-1 inner-loop behavior.
fn solve_group_one_shot(s: &mut GroupScenario) -> Vec<Verdict> {
    let mut solver = Solver::new();
    let mut verdicts = Vec::with_capacity(s.candidates.len());
    for i in 0..s.candidates.len() {
        let mut query: Vec<TermId> = s.prefix[..i].to_vec();
        query.push(s.candidates[i]);
        verdicts.push(solver.solve(&mut s.arena, &query, Some(&s.seed)));
    }
    verdicts
}

/// Solves every candidate through one incremental session: the shared
/// prefix is asserted and propagated once, each candidate in a push/pop
/// frame.
fn solve_group_incremental(s: &mut GroupScenario) -> Vec<Verdict> {
    let mut session = IncrementalSolver::new();
    let mut verdicts = Vec::with_capacity(s.candidates.len());
    for i in 0..s.candidates.len() {
        session.push(&s.arena);
        session.assert_term(&mut s.arena, s.candidates[i]);
        verdicts.push(session.check(&s.arena, Some(&s.seed)));
        session.pop();
        session.assert_term(&mut s.arena, s.prefix[i]);
    }
    verdicts
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(20);

    group.bench_function("equality_query", |b| {
        b.iter(|| {
            let mut arena = TermArena::new();
            let x = arena.declare_var("x", 32);
            let xv = arena.var(x);
            let c42 = arena.int_const(42_424, 32);
            let eq = arena.eq(xv, c42);
            let mut solver = Solver::new();
            std::hint::black_box(solver.solve(&mut arena, &[eq], None))
        })
    });

    group.bench_function("prefix_range_query", |b| {
        b.iter(|| {
            let mut arena = TermArena::new();
            let addr = arena.declare_var("nlri.addr", 32);
            let len = arena.declare_var("nlri.len", 8);
            let av = arena.var(addr);
            let lv = arena.var(len);
            let lo = arena.int_const(0xd041_9800, 32);
            let hi = arena.int_const(0xd041_9bff, 32);
            let min = arena.int_const(22, 8);
            let max = arena.int_const(24, 8);
            let c1 = arena.uge(av, lo);
            let c2 = arena.ule(av, hi);
            let c3 = arena.uge(lv, min);
            let c4 = arena.ule(lv, max);
            let mut solver = Solver::new();
            std::hint::black_box(solver.solve(&mut arena, &[c1, c2, c3, c4], None))
        })
    });

    group.bench_function("unsat_query", |b| {
        b.iter(|| {
            let mut arena = TermArena::new();
            let x = arena.declare_var("x", 16);
            let xv = arena.var(x);
            let c5 = arena.int_const(5, 16);
            let c1 = arena.ult(xv, c5);
            let c2 = arena.ugt(xv, c5);
            let mut solver = Solver::new();
            std::hint::black_box(solver.solve(&mut arena, &[c1, c2], None))
        })
    });

    group.bench_function("candidate_group_one_shot", |b| {
        b.iter(|| {
            let mut s = group_scenario();
            std::hint::black_box(solve_group_one_shot(&mut s).len())
        })
    });

    group.bench_function("candidate_group_incremental", |b| {
        b.iter(|| {
            let mut s = group_scenario();
            std::hint::black_box(solve_group_incremental(&mut s).len())
        })
    });

    group.finish();

    // Direct readout + JSON baseline: same candidate group, one-shot vs
    // batched, with the verdict-equality assertion that guards the whole
    // optimization.
    let reps: u32 = std::env::var("DICE_BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let time = |f: &mut dyn FnMut() -> Vec<Verdict>| -> (Duration, Vec<Verdict>) {
        let mut best = Duration::MAX;
        let mut last = Vec::new();
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            last = f();
            best = best.min(start.elapsed());
        }
        (best, last)
    };
    let (one_shot_time, one_shot_verdicts) = time(&mut || {
        let mut s = group_scenario();
        solve_group_one_shot(&mut s)
    });
    let (incremental_time, incremental_verdicts) = time(&mut || {
        let mut s = group_scenario();
        solve_group_incremental(&mut s)
    });
    assert_eq!(
        one_shot_verdicts, incremental_verdicts,
        "batched solving must return identical verdicts and models"
    );
    let speedup = one_shot_time.as_secs_f64() / incremental_time.as_secs_f64().max(f64::EPSILON);
    println!(
        "\nshared-prefix group ({DEPTH} candidates, {VARS} fields): one-shot {one_shot_time:?}, \
         incremental {incremental_time:?}, speedup {speedup:.2}x",
    );

    if let Ok(path) = std::env::var("DICE_BENCH_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"solver_shared_prefix_group\",\n  \"depth\": {DEPTH},\n  \
             \"fields\": {VARS},\n  \"candidates\": {},\n  \"one_shot_ns\": {},\n  \
             \"incremental_ns\": {},\n  \"speedup\": {speedup:.4}\n}}\n",
            one_shot_verdicts.len(),
            one_shot_time.as_nanos(),
            incremental_time.as_nanos(),
        );
        std::fs::write(&path, json).expect("write bench baseline");
        println!("wrote perf baseline to {path}");
    }
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
