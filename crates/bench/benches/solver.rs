//! Microbenchmark: solver query latency for the constraint shapes the
//! BGP handler produces (supports experiment F1 and the CPU-overhead model).

use criterion::{criterion_group, criterion_main, Criterion};
use dice_solver::{Solver, TermArena};

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(20);

    group.bench_function("equality_query", |b| {
        b.iter(|| {
            let mut arena = TermArena::new();
            let x = arena.declare_var("x", 32);
            let xv = arena.var(x);
            let c42 = arena.int_const(42_424, 32);
            let eq = arena.eq(xv, c42);
            let mut solver = Solver::new();
            std::hint::black_box(solver.solve(&mut arena, &[eq], None))
        })
    });

    group.bench_function("prefix_range_query", |b| {
        b.iter(|| {
            let mut arena = TermArena::new();
            let addr = arena.declare_var("nlri.addr", 32);
            let len = arena.declare_var("nlri.len", 8);
            let av = arena.var(addr);
            let lv = arena.var(len);
            let lo = arena.int_const(0xd041_9800, 32);
            let hi = arena.int_const(0xd041_9bff, 32);
            let min = arena.int_const(22, 8);
            let max = arena.int_const(24, 8);
            let c1 = arena.uge(av, lo);
            let c2 = arena.ule(av, hi);
            let c3 = arena.uge(lv, min);
            let c4 = arena.ule(lv, max);
            let mut solver = Solver::new();
            std::hint::black_box(solver.solve(&mut arena, &[c1, c2, c3, c4], None))
        })
    });

    group.bench_function("unsat_query", |b| {
        b.iter(|| {
            let mut arena = TermArena::new();
            let x = arena.declare_var("x", 16);
            let xv = arena.var(x);
            let c5 = arena.int_const(5, 16);
            let c1 = arena.ult(xv, c5);
            let c2 = arena.ugt(xv, c5);
            let mut solver = Solver::new();
            std::hint::black_box(solver.solve(&mut arena, &[c1, c2], None))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
