//! Observability overhead benchmark: the cost of a traced exploration
//! round relative to the identical untraced run, plus the per-call cost of
//! a disabled span — the no-op path every hot loop pays when no sink is
//! installed. Asserts in-bench that the live report digest is
//! byte-identical across absent, no-op and recording sinks.
//!
//! Set `DICE_BENCH_OBS_JSON=<path>` to write the comparison as a JSON
//! baseline artifact (CI uploads `BENCH_obs.json` next to the other
//! `BENCH_*.json` baselines).

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bgp::attributes::RouteAttrs;
use dice_bgp::message::{BgpMessage, UpdateMessage};
use dice_bgp::AsPath;
use dice_core::{DiceBuilder, DiceSession, LiveOrchestrator, LiveReport, OriginHijackChecker};
use dice_netsim::topology::{addr, asn, figure2_topology, CustomerFilterMode};
use dice_netsim::Simulator;
use dice_obs::{BufferedRecorder, NoopSink, SinkGuard, TraceSink};
use dice_symexec::EngineConfig;

const EPOCH_BLOCKS: [&str; 3] = ["41.1.0.0/16", "41.64.0.0/12", "41.128.0.0/12"];

fn announcement(prefix: &str, path: &[u32], next_hop: std::net::Ipv4Addr) -> BgpMessage {
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence(path.iter().copied());
    attrs.next_hop = next_hop;
    BgpMessage::Update(UpdateMessage::announce(
        vec![prefix.parse().expect("valid prefix")],
        &attrs,
    ))
}

fn session() -> DiceSession {
    DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(32))
        .checker(Box::new(OriginHijackChecker::new()))
        .build()
}

/// One continuous exploration run over the Figure 2 scenario: an epoch of
/// customer traffic per round. The sink installed (or not) by the caller
/// is the only variable.
fn live_run() -> LiveReport {
    let topo = figure2_topology(CustomerFilterMode::Erroneous);
    let provider = topo.node_by_name("Provider").expect("node");
    let mut sim = Simulator::new(&topo);
    sim.inject(
        provider,
        addr::INTERNET,
        announcement(
            "208.65.152.0/22",
            &[asn::INTERNET, 3356, asn::VICTIM],
            addr::INTERNET,
        ),
    );
    sim.run_to_quiescence(100);
    let orchestrator = LiveOrchestrator::new(session()).with_core_budget(1);
    orchestrator.run(&mut sim, |sim, epoch| {
        if let Some(block) = EPOCH_BLOCKS.get(epoch) {
            sim.inject(
                provider,
                addr::CUSTOMER,
                announcement(block, &[asn::CUSTOMER, asn::CUSTOMER], addr::CUSTOMER),
            );
        }
        epoch + 1 < EPOCH_BLOCKS.len()
    })
}

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");
    group.sample_size(10);

    group.bench_function("figure2_rounds_tracing_absent", |b| {
        b.iter(|| std::hint::black_box(live_run().total_runs()))
    });

    group.bench_function("figure2_rounds_tracing_noop", |b| {
        let _guard = SinkGuard::install(Arc::new(NoopSink));
        b.iter(|| std::hint::black_box(live_run().total_runs()))
    });

    group.bench_function("figure2_rounds_tracing_recorded", |b| {
        let recorder = Arc::new(BufferedRecorder::new());
        let _guard = SinkGuard::install(recorder.clone());
        b.iter(|| {
            let runs = live_run().total_runs();
            recorder.drain();
            std::hint::black_box(runs)
        })
    });

    // The per-call price of a disabled span: one relaxed atomic load.
    group.bench_function("disabled_span_per_call", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                let mut span = dice_obs::span("bench", "obs.disabled");
                span.set_detail(1);
                std::hint::black_box(&span);
            }
        })
    });

    group.finish();

    // Direct readout + JSON baseline, plus the tentpole guarantee measured
    // in-bench: the digest is byte-identical across absent, no-op and
    // recording sinks.
    let reps: u32 = std::env::var("DICE_BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let time = |sink: Option<Arc<dyn TraceSink>>| -> (Duration, LiveReport) {
        let _guard = sink.map(SinkGuard::install);
        let mut best = Duration::MAX;
        let mut last = LiveReport::default();
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            last = live_run();
            best = best.min(start.elapsed());
        }
        (best, last)
    };
    let (absent_time, absent) = time(None);
    let (noop_time, noop) = time(Some(Arc::new(NoopSink)));
    let recorder = Arc::new(BufferedRecorder::new());
    let (recorded_time, recorded) = time(Some(recorder.clone()));
    let events = recorder.drain().len();

    assert_eq!(
        absent.digest(),
        noop.digest(),
        "a no-op sink must leave the live digest byte-identical"
    );
    assert_eq!(
        absent.digest(),
        recorded.digest(),
        "a recording sink must leave the live digest byte-identical"
    );
    assert!(events > 0, "the recorder captured the traced runs");

    let noop_overhead = noop_time.as_secs_f64() / absent_time.as_secs_f64().max(f64::EPSILON);
    let recorded_overhead =
        recorded_time.as_secs_f64() / absent_time.as_secs_f64().max(f64::EPSILON);
    println!(
        "\nobservability ({} rounds, {} events recorded over {} rep(s)): \
         absent {:?}, no-op {:?} ({noop_overhead:.2}x), recorded {:?} ({recorded_overhead:.2}x)",
        absent.rounds.len(),
        events,
        reps,
        absent_time,
        noop_time,
        recorded_time,
    );

    if let Ok(path) = std::env::var("DICE_BENCH_OBS_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"obs_figure2_rounds\",\n  \"rounds\": {},\n  \
             \"total_runs\": {},\n  \"events_recorded\": {},\n  \"absent_ns\": {},\n  \
             \"noop_ns\": {},\n  \"recorded_ns\": {},\n  \
             \"noop_overhead\": {noop_overhead:.4},\n  \
             \"recorded_overhead\": {recorded_overhead:.4}\n}}\n",
            absent.rounds.len(),
            absent.total_runs(),
            events,
            absent_time.as_nanos(),
            noop_time.as_nanos(),
            recorded_time.as_nanos(),
        );
        std::fs::write(&path, json).expect("write bench baseline");
        println!("wrote perf baseline to {path}");
    }
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
