//! Wire-ingestion benchmark: delivering a synthetic trace through the
//! full wire path (`WireTrace` bytes → `dice_bgp::wire::decode` →
//! re-encode identity check → injection) vs handing the same messages to
//! the simulator as in-memory structs, with the equivalence assertion
//! that guards the replay driver — both paths must leave the simulator
//! with a byte-identical observed log.
//!
//! Set `DICE_BENCH_INGEST_JSON=<path>` to write the comparison as a JSON
//! baseline artifact (CI uploads `BENCH_ingest.json` next to
//! `BENCH_live.json` and the other bench artifacts).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bgp::message::BgpMessage;
use dice_netsim::topology::{addr, asn, figure2_topology, CustomerFilterMode, NodeId};
use dice_netsim::{
    generate_trace, synthesize_wire_trace, IngestStats, Simulator, TraceGenConfig,
    WireReplayDriver, WireTrace,
};

const QUIESCE_STEPS: u64 = 200_000;

fn trace_config() -> TraceGenConfig {
    TraceGenConfig {
        prefix_count: 600,
        update_count: 300,
        ..Default::default()
    }
}

fn fresh_sim() -> (Simulator, NodeId) {
    let topo = figure2_topology(CustomerFilterMode::Correct);
    let provider = topo.node_by_name("Provider").expect("node");
    (Simulator::new(&topo), provider)
}

/// The wire path: parse the serialized trace, decode every frame through
/// the codec (with the re-encode identity check) and inject the results.
fn wire_delivery(bytes: &[u8]) -> (Simulator, IngestStats) {
    let trace = WireTrace::from_bytes(bytes).expect("trace parses");
    let (mut sim, _) = fresh_sim();
    let mut driver = WireReplayDriver::new(trace);
    let stats = driver.stats();
    while driver.drive(&mut sim, 0) {}
    sim.run_to_quiescence(QUIESCE_STEPS);
    (sim, stats.snapshot())
}

/// The in-memory path: the same messages as ready-made structs.
fn in_memory_delivery(messages: &[BgpMessage], node: NodeId) -> Simulator {
    let (mut sim, _) = fresh_sim();
    for message in messages {
        sim.inject(node, addr::INTERNET, message.clone());
    }
    sim.run_to_quiescence(QUIESCE_STEPS);
    sim
}

fn bench_ingest(c: &mut Criterion) {
    let config = trace_config();
    let (_, provider) = fresh_sim();
    let wire = synthesize_wire_trace(&config, provider, asn::INTERNET, addr::INTERNET);
    let frames = wire.len();
    let bytes = wire.to_bytes();
    let struct_trace = generate_trace(&config, asn::INTERNET, addr::INTERNET);
    let messages: Vec<BgpMessage> = struct_trace
        .table
        .iter()
        .chain(struct_trace.updates.iter().map(|e| &e.update))
        .cloned()
        .map(BgpMessage::Update)
        .collect();
    assert_eq!(messages.len(), frames, "both paths carry the same updates");

    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);

    group.bench_function("wire_replay_900_updates", |b| {
        b.iter(|| std::hint::black_box(wire_delivery(&bytes).0.observed_cursor()))
    });

    group.bench_function("in_memory_900_updates", |b| {
        b.iter(|| std::hint::black_box(in_memory_delivery(&messages, provider).observed_cursor()))
    });

    group.finish();

    // Direct readout + JSON baseline, plus the guarantee that guards the
    // driver: both delivery paths leave an identical observed log.
    let reps: u32 = std::env::var("DICE_BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let mut wire_time = Duration::MAX;
    let mut mem_time = Duration::MAX;
    let mut wire_sim = None;
    let mut ingest = IngestStats::default();
    let mut mem_sim = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let (sim, stats) = wire_delivery(&bytes);
        wire_time = wire_time.min(start.elapsed());
        wire_sim = Some(sim);
        ingest = stats;
        let start = Instant::now();
        mem_sim = Some(in_memory_delivery(&messages, provider));
        mem_time = mem_time.min(start.elapsed());
    }
    let wire_sim = wire_sim.expect("at least one rep");
    let mem_sim = mem_sim.expect("at least one rep");
    assert_eq!(
        format!("{:?}", wire_sim.observed_log()),
        format!("{:?}", mem_sim.observed_log()),
        "wire-fed delivery must be byte-identical to in-memory delivery"
    );
    assert_eq!(ingest.frames as usize, frames);
    assert_eq!(ingest.decoded as usize, frames);
    assert_eq!(ingest.decode_errors, 0);
    assert_eq!(ingest.reencode_mismatches, 0);

    let overhead_percent =
        (wire_time.as_secs_f64() / mem_time.as_secs_f64().max(f64::EPSILON) - 1.0) * 100.0;
    let decode_rate = ingest.updates_per_second();
    println!(
        "\ningest ({frames} frames, {} bytes on the wire): wire {wire_time:?}, in-memory \
         {mem_time:?}, overhead {overhead_percent:.1}%, decode rate {decode_rate:.0} updates/s",
        bytes.len(),
    );

    if let Ok(path) = std::env::var("DICE_BENCH_INGEST_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"ingest_wire_vs_in_memory\",\n  \"frames\": {frames},\n  \
             \"trace_bytes\": {},\n  \"wire_ns\": {},\n  \"in_memory_ns\": {},\n  \
             \"overhead_percent\": {overhead_percent:.4},\n  \
             \"decode_updates_per_sec\": {decode_rate:.1}\n}}\n",
            bytes.len(),
            wire_time.as_nanos(),
            mem_time.as_nanos(),
        );
        std::fs::write(&path, json).expect("write bench baseline");
        println!("wrote perf baseline to {path}");
    }
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
