//! RIB scale benchmark (experiment E1 substrate: table-load speed, plus
//! the checkpoint cost model the exploration hot path rides on).
//!
//! Two paper-scale comparisons over a synthetic RouteViews-like table
//! (319,355 prefixes at full scale; scaled by `DICE_BENCH_SAMPLE_SIZE`
//! for smoke runs, full size under `DICE_FULL_TABLE=1`):
//!
//! 1. **sharded vs single-trie table load** — the same route set loaded
//!    into a one-shard RIB sequentially and into a core-sized sharded RIB
//!    via [`Rib::load_parallel`], with the resulting tables asserted
//!    observationally identical;
//! 2. **CoW round checkpoint vs per-input deep clone** — the setup cost
//!    of handing N observed inputs their router state the old way (N deep
//!    clones) and the new way (one copy-on-write capture + N reference
//!    bumps), with the exploration report digests of both
//!    [`CheckpointMode`]s asserted byte-identical.
//!
//! Set `DICE_BENCH_RIB_JSON=<path>` to write the comparison as a JSON
//! baseline artifact (CI uploads `BENCH_rib.json` next to the solver,
//! fleet and live baselines).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bench::{install_victim_prefix, observed_customer_update, provider_router, Scale};
use dice_bgp::attributes::RouteAttrs;
use dice_bgp::prefix::Ipv4Prefix;
use dice_bgp::route::{PeerId, Route};
use dice_bgp::AsPath;
use dice_core::{CheckpointMode, CustomerFilterMode, Dice, DiceConfig, RoundCheckpoint};
use dice_netsim::trace::PAPER_TABLE_SIZE;
use dice_netsim::{generate_trace, TraceGenConfig};
use dice_router::Rib;
use dice_symexec::EngineConfig;
use std::net::Ipv4Addr;

fn route(i: u32) -> Route {
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([1299, 100_000 + i]);
    attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
    let prefix = Ipv4Prefix::new((20u32 << 24) | (i << 8), 24).expect("valid");
    Route::new(prefix, attrs, PeerId(2), 2)
}

fn bench_rib(c: &mut Criterion) {
    let mut group = c.benchmark_group("rib");
    group.sample_size(20);

    group.bench_function("announce_10k", |b| {
        b.iter(|| {
            let mut rib = Rib::new();
            for i in 0..10_000 {
                rib.announce(route(i));
            }
            std::hint::black_box(rib.prefix_count())
        })
    });

    let mut rib = Rib::new();
    for i in 0..10_000 {
        rib.announce(route(i));
    }
    group.bench_function("lookup_ip", |b| {
        b.iter(|| std::hint::black_box(rib.lookup_ip(0x1400_0501)))
    });
    group.bench_function("best_covering_route", |b| {
        let p: Ipv4Prefix = "20.0.5.0/25".parse().unwrap();
        b.iter(|| std::hint::black_box(rib.best_covering_route(&p)))
    });
    group.bench_function("cow_fork_10k", |b| {
        b.iter(|| std::hint::black_box(rib.clone().shard_count()))
    });
    group.finish();

    paper_scale_comparison();
}

/// The number of table prefixes for this run: the paper's full dump under
/// `DICE_FULL_TABLE`, otherwise scaled by `DICE_BENCH_SAMPLE_SIZE` (as a
/// percentage of the full table, default 20%) so CI smoke runs finish in
/// seconds while exercising the identical code paths.
fn table_size(reps: u32) -> usize {
    if matches!(Scale::from_env(), Scale::Paper) {
        PAPER_TABLE_SIZE
    } else {
        (PAPER_TABLE_SIZE * reps as usize / 100).clamp(2_000, PAPER_TABLE_SIZE)
    }
}

/// The paper-structured route set: the synthetic RouteViews-like table
/// dump as announced by the Internet peer, converted to installable routes.
fn paper_routes(prefix_count: usize) -> Vec<Route> {
    let config = TraceGenConfig {
        prefix_count,
        update_count: 0,
        ..Default::default()
    };
    let trace = generate_trace(&config, 1299, Ipv4Addr::new(10, 0, 2, 1));
    trace
        .table
        .iter()
        .map(|update| Route::new(update.nlri[0], update.route_attrs(), PeerId(2), 2))
        .collect()
}

/// A fingerprint of the Loc-RIB contents in canonical order, used to
/// assert the sharded and unsharded tables are observationally identical.
fn loc_rib_fingerprint(rib: &Rib) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut hasher = DefaultHasher::new();
    for (prefix, best) in rib.loc_rib() {
        (prefix.addr(), prefix.len(), best.learned_from.0).hash(&mut hasher);
        best.attrs.as_path.length().hash(&mut hasher);
    }
    hasher.finish()
}

fn paper_scale_comparison() {
    let reps: u32 = std::env::var("DICE_BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let prefixes = table_size(reps);
    let routes = paper_routes(prefixes);
    let timing_reps = reps.clamp(1, 10);

    // 1. Table load: one trie loaded sequentially (the pre-change path)
    //    vs a sharded RIB loaded with per-shard workers. At least 16
    //    shards even on narrow machines, so shard partitioning and the
    //    shallower per-shard tries are exercised everywhere; worker count
    //    follows the machine.
    let shard_count = Rib::new().shard_count().max(16);
    let best_of = |mut run: Box<dyn FnMut(Vec<Route>) -> Rib>| -> (Duration, Rib) {
        let mut best = Duration::MAX;
        let mut last = None;
        for _ in 0..timing_reps {
            let batch = routes.clone();
            let start = Instant::now();
            let rib = run(batch);
            best = best.min(start.elapsed());
            last = Some(rib);
        }
        (best, last.expect("at least one rep"))
    };
    let (single_time, single_rib) = best_of(Box::new(|batch| {
        let mut rib = Rib::with_shard_count(1);
        for r in batch {
            rib.announce(r);
        }
        rib
    }));
    let (sharded_time, sharded_rib) = best_of(Box::new(move |batch| {
        let mut rib = Rib::with_shard_count(shard_count);
        rib.load_parallel(batch, 0);
        rib
    }));
    assert_eq!(sharded_rib.prefix_count(), prefixes);
    assert_eq!(sharded_rib.prefix_count(), single_rib.prefix_count());
    assert_eq!(sharded_rib.route_count(), single_rib.route_count());
    assert_eq!(
        loc_rib_fingerprint(&sharded_rib),
        loc_rib_fingerprint(&single_rib),
        "sharded and single-trie tables must be observationally identical"
    );
    let load_speedup = single_time.as_secs_f64() / sharded_time.as_secs_f64().max(f64::EPSILON);

    // 2. Round setup: the Figure 2 provider carrying the table, N observed
    //    inputs to hand state to.
    let mut router = provider_router(CustomerFilterMode::Erroneous);
    install_victim_prefix(&mut router);
    router.load_routes(routes, 0);
    let inputs = 8usize;

    let mut clone_time = Duration::MAX;
    for _ in 0..timing_reps {
        let start = Instant::now();
        let clones: Vec<_> = (0..inputs).map(|_| router.deep_clone()).collect();
        clone_time = clone_time.min(start.elapsed());
        std::hint::black_box(clones);
    }
    let mut cow_time = Duration::MAX;
    let mut cow_stats = None;
    for _ in 0..timing_reps {
        let start = Instant::now();
        let checkpoint = RoundCheckpoint::capture(&router);
        let handles: Vec<_> = (0..inputs).map(|_| checkpoint.clone()).collect();
        cow_time = cow_time.min(start.elapsed());
        cow_stats = Some(checkpoint.cow_stats_vs(&router));
        std::hint::black_box(handles);
    }
    let cow_stats = cow_stats.expect("at least one rep");
    assert_eq!(
        cow_stats.units_copied(),
        0,
        "an untouched round checkpoint shares every RIB shard with the live router"
    );
    let setup_speedup = clone_time.as_secs_f64() / cow_time.as_secs_f64().max(f64::EPSILON);

    // 3. The anchor: both checkpoint modes explore to byte-identical
    //    reports over this very router (the pre-change path is
    //    DeepClonePerInput).
    let observed = vec![
        (
            dice_bench::customer_peer(&router),
            observed_customer_update(),
        ),
        (
            dice_bench::customer_peer(&router),
            observed_customer_update(),
        ),
    ];
    let engine = EngineConfig::default().with_max_runs(16);
    let cow_report =
        Dice::with_config(DiceConfig::default().with_engine(engine)).run(&router, &observed);
    let clone_report = Dice::with_config(
        DiceConfig::default()
            .with_engine(engine)
            .with_checkpoint_mode(CheckpointMode::DeepClonePerInput),
    )
    .run(&router, &observed);
    assert_eq!(
        cow_report.digest(),
        clone_report.digest(),
        "CoW round checkpoints must reproduce the per-input deep-clone reports exactly"
    );

    println!(
        "\npaper-scale table ({prefixes} prefixes, {} shards): single-trie load {:?}, sharded load {:?}, speedup {load_speedup:.2}x",
        sharded_rib.shard_count(),
        single_time,
        sharded_time,
    );
    println!(
        "round setup ({inputs} inputs): per-input deep clone {clone_time:?}, CoW capture+share {cow_time:?}, speedup {setup_speedup:.2}x ({cow_stats})",
    );

    if let Ok(path) = std::env::var("DICE_BENCH_RIB_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"rib_paper_scale\",\n  \"table_prefixes\": {prefixes},\n  \
             \"shards\": {},\n  \"single_load_ns\": {},\n  \"sharded_load_ns\": {},\n  \
             \"load_speedup\": {load_speedup:.4},\n  \"round_inputs\": {inputs},\n  \
             \"deep_clone_setup_ns\": {},\n  \"cow_setup_ns\": {},\n  \
             \"setup_speedup\": {setup_speedup:.4},\n  \"cow_shards_shared\": {},\n  \
             \"cow_shards_total\": {},\n  \"digests_identical\": true\n}}\n",
            sharded_rib.shard_count(),
            single_time.as_nanos(),
            sharded_time.as_nanos(),
            clone_time.as_nanos(),
            cow_time.as_nanos(),
            cow_stats.units_shared,
            cow_stats.units_total,
        );
        std::fs::write(&path, json).expect("write bench baseline");
        println!("wrote perf baseline to {path}");
    }
}

criterion_group!(benches, bench_rib);
criterion_main!(benches);
