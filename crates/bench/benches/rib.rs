//! Microbenchmark: RIB insertion and longest-prefix lookup (experiment E1
//! substrate: table-load speed).

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bgp::attributes::RouteAttrs;
use dice_bgp::prefix::Ipv4Prefix;
use dice_bgp::route::{PeerId, Route};
use dice_bgp::AsPath;
use dice_router::Rib;
use std::net::Ipv4Addr;

fn route(i: u32) -> Route {
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([1299, 100_000 + i]);
    attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
    let prefix = Ipv4Prefix::new((20u32 << 24) | (i << 8), 24).expect("valid");
    Route::new(prefix, attrs, PeerId(2), 2)
}

fn bench_rib(c: &mut Criterion) {
    let mut group = c.benchmark_group("rib");
    group.sample_size(20);

    group.bench_function("announce_10k", |b| {
        b.iter(|| {
            let mut rib = Rib::new();
            for i in 0..10_000 {
                rib.announce(route(i));
            }
            std::hint::black_box(rib.prefix_count())
        })
    });

    let mut rib = Rib::new();
    for i in 0..10_000 {
        rib.announce(route(i));
    }
    group.bench_function("lookup_ip", |b| {
        b.iter(|| std::hint::black_box(rib.lookup_ip(0x1400_0501)))
    });
    group.bench_function("best_covering_route", |b| {
        let p: Ipv4Prefix = "20.0.5.0/25".parse().unwrap();
        b.iter(|| std::hint::black_box(rib.best_covering_route(&p)))
    });
    group.finish();
}

criterion_group!(benches, bench_rib);
criterion_main!(benches);
