//! Fleet exploration benchmark: one DiCE round beside every node of the
//! Figure 2 topology, sequential (core budget 1) vs concurrent (all
//! cores), with the report-digest equality assertion that guards the
//! orchestrator — budgets only change thread counts, never results.
//!
//! Set `DICE_BENCH_FLEET_JSON=<path>` to write the sequential-vs-parallel
//! comparison as a JSON baseline artifact (CI uploads `BENCH_fleet.json`
//! for perf-trajectory tracking).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bgp::attributes::RouteAttrs;
use dice_bgp::message::{BgpMessage, UpdateMessage};
use dice_bgp::AsPath;
use dice_core::{
    DiceBuilder, FleetExplorer, FleetReport, ForwardingLoopChecker, OriginHijackChecker,
};
use dice_netsim::topology::{addr, asn, figure2_topology, CustomerFilterMode};
use dice_netsim::Simulator;
use dice_symexec::EngineConfig;

fn announcement(prefix: &str, path: &[u32], next_hop: std::net::Ipv4Addr) -> BgpMessage {
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence(path.iter().copied());
    attrs.next_hop = next_hop;
    BgpMessage::Update(UpdateMessage::announce(
        vec![prefix.parse().expect("valid prefix")],
        &attrs,
    ))
}

/// The simulated Figure 2 fleet after live traffic: the victim /22
/// installed from the Internet, several customer announcements observed —
/// enough per-node inputs that node-level parallelism has work to split.
fn simulated_fleet() -> Simulator {
    let topo = figure2_topology(CustomerFilterMode::Erroneous);
    let provider = topo.node_by_name("Provider").expect("node");
    let mut sim = Simulator::new(&topo);
    sim.inject(
        provider,
        addr::INTERNET,
        announcement(
            "208.65.152.0/22",
            &[asn::INTERNET, 3356, asn::VICTIM],
            addr::INTERNET,
        ),
    );
    sim.run_to_quiescence(100);
    for block in [
        "41.1.0.0/16",
        "41.64.0.0/12",
        "41.128.0.0/12",
        "41.192.0.0/12",
    ] {
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement(block, &[asn::CUSTOMER, asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
    }
    sim
}

fn explorer(core_budget: usize) -> FleetExplorer {
    let session = DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(64))
        .checker(Box::new(OriginHijackChecker::new()))
        .checker(Box::new(ForwardingLoopChecker::new()))
        .build();
    FleetExplorer::new(session).with_core_budget(core_budget)
}

fn bench_fleet(c: &mut Criterion) {
    let sim = simulated_fleet();

    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    group.bench_function("figure2_sequential_budget1", |b| {
        let fleet = explorer(1);
        b.iter(|| std::hint::black_box(fleet.explore(&sim).total_runs()))
    });

    group.bench_function("figure2_parallel_all_cores", |b| {
        let fleet = explorer(0);
        b.iter(|| std::hint::black_box(fleet.explore(&sim).total_runs()))
    });

    group.finish();

    // Direct readout + JSON baseline: sequential vs parallel fleet round,
    // with the digest-equality assertion that guards the orchestrator.
    let reps: u32 = std::env::var("DICE_BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let time = |fleet: &FleetExplorer| -> (Duration, FleetReport) {
        let mut best = Duration::MAX;
        let mut last = FleetReport::default();
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            last = fleet.explore(&sim);
            best = best.min(start.elapsed());
        }
        (best, last)
    };
    let (sequential_time, sequential) = time(&explorer(1));
    let (parallel_time, parallel) = time(&explorer(0));
    assert_eq!(
        sequential.digest(),
        parallel.digest(),
        "fleet reports must be identical for every core budget"
    );
    assert!(sequential.has_faults(), "the provider leak is detected");
    let speedup = sequential_time.as_secs_f64() / parallel_time.as_secs_f64().max(f64::EPSILON);
    println!(
        "\nfleet round ({} nodes, {} runs, {} fault(s), {} cores): sequential {:?}, parallel {:?}, speedup {:.2}x",
        sequential.nodes.len(),
        sequential.total_runs(),
        sequential.faults.len(),
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        sequential_time,
        parallel_time,
        speedup,
    );

    if let Ok(path) = std::env::var("DICE_BENCH_FLEET_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"fleet_figure2_round\",\n  \"nodes\": {},\n  \"runs\": {},\n  \
             \"faults\": {},\n  \"sequential_ns\": {},\n  \"parallel_ns\": {},\n  \
             \"speedup\": {speedup:.4}\n}}\n",
            sequential.nodes.len(),
            sequential.total_runs(),
            sequential.faults.len(),
            sequential_time.as_nanos(),
            parallel_time.as_nanos(),
        );
        std::fs::write(&path, json).expect("write bench baseline");
        println!("wrote perf baseline to {path}");
    }
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
