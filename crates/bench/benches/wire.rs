//! Microbenchmark: RFC 4271 wire encode/decode throughput (substrate cost
//! behind the updates/second measurements).

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bgp::attributes::RouteAttrs;
use dice_bgp::message::{BgpMessage, UpdateMessage};
use dice_bgp::{wire, AsPath};
use std::net::Ipv4Addr;

fn sample_update() -> BgpMessage {
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([1299, 3356, 36561]);
    attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
    attrs.med = Some(50);
    BgpMessage::Update(UpdateMessage::announce(
        vec![
            "208.65.152.0/22".parse().unwrap(),
            "208.65.153.0/24".parse().unwrap(),
        ],
        &attrs,
    ))
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let msg = sample_update();
    let bytes = wire::encode(&msg);

    group.bench_function("encode_update", |b| {
        b.iter(|| std::hint::black_box(wire::encode(&msg)))
    });
    group.bench_function("decode_update", |b| {
        b.iter(|| std::hint::black_box(wire::decode(&bytes).expect("valid")))
    });
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
