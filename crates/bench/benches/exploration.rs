//! Experiment F1 (Figure 1): concolic exploration of a nested-branch
//! handler — the engine negates predicates to reach every path — plus two
//! comparisons: the sequential-vs-parallel multi-input `Dice::run` round
//! (PR 1) and the sequential-vs-batched engine inner loop (incremental
//! shared-prefix solving overlapped with execution), with fault-set
//! equality asserted for both.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bench::{customer_peer, install_victim_prefix, observed_customer_update, provider_router};
use dice_bgp::message::UpdateMessage;
use dice_bgp::route::PeerId;
use dice_core::{CustomerFilterMode, Dice, DiceConfig};
use dice_router::BgpRouter;
use dice_symexec::{ConcolicEngine, EngineConfig, ExecCtx, InputValues};

fn figure1_program(ctx: &mut ExecCtx, input: &InputValues) -> u32 {
    let x = ctx.symbolic_u32("x", input.get_or("x", 0) as u32);
    let y = ctx.symbolic_u32("y", input.get_or("y", 0) as u32);
    let p1 = x.gt_const(100, ctx);
    if ctx.branch_labeled("p1", p1) {
        let p2 = y.eq_const(7, ctx);
        if ctx.branch_labeled("p2", p2) {
            2
        } else {
            1
        }
    } else {
        0
    }
}

/// The Figure 2 Provider under test plus eight observed customer inputs —
/// the multi-input round `Dice::run` fans out across workers.
fn multi_input_scenario() -> (BgpRouter, Vec<(PeerId, UpdateMessage)>) {
    let mut router = provider_router(CustomerFilterMode::Erroneous);
    install_victim_prefix(&mut router);
    let customer = customer_peer(&router);
    let observed: Vec<(PeerId, UpdateMessage)> = (0..8)
        .map(|i| {
            let mut update = observed_customer_update();
            if i % 2 == 1 {
                // Alternate the announced block so inputs are not all identical.
                update.nlri = vec!["41.128.0.0/12".parse().expect("valid")];
            }
            (customer, update)
        })
        .collect();
    (router, observed)
}

fn dice_with_workers(workers: usize) -> Dice {
    Dice::with_config(DiceConfig::default().with_workers(workers))
}

/// A deep comparison chain: every run enqueues dozens of sibling negation
/// candidates sharing a long path prefix — the multi-candidate scenario
/// where batched incremental solving pays off.
fn chain_program(ctx: &mut ExecCtx, input: &InputValues) -> u32 {
    let v = ctx.symbolic_u32("v", input.get_or("v", 0) as u32);
    let w = ctx.symbolic_u32("w", input.get_or("w", 0) as u32);
    let mut crossed = 0u32;
    for step in 0..32u32 {
        let c = v.gt_const(step * 24, ctx);
        if ctx.branch_labeled(&format!("v-step{step}"), c) {
            crossed += 1;
        }
        let c = w.gt_const(step * 24 + 12, ctx);
        if ctx.branch_labeled(&format!("w-step{step}"), c) {
            crossed += 1;
        }
    }
    crossed
}

fn chain_engine(batch_size: usize, solver_workers: usize) -> ConcolicEngine {
    ConcolicEngine::with_config(
        EngineConfig::default()
            .with_max_runs(96)
            .with_batch_size(batch_size)
            .with_solver_workers(solver_workers),
    )
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("exploration");
    group.sample_size(20);

    group.bench_function("figure1_full_coverage", |b| {
        b.iter(|| {
            let engine = ConcolicEngine::with_config(EngineConfig::default().with_max_runs(16));
            let mut program = figure1_program;
            let result = engine.explore(
                &mut program,
                &[InputValues::new().with("x", 5).with("y", 0)],
            );
            assert!(result.coverage.complete_sites() >= 2);
            std::hint::black_box(result.stats.runs)
        })
    });

    let (router, observed) = multi_input_scenario();

    group.bench_function("multi_input_round_sequential", |b| {
        let dice = dice_with_workers(1);
        b.iter(|| std::hint::black_box(dice.run(&router, &observed).runs))
    });

    group.bench_function("multi_input_round_parallel", |b| {
        let dice = dice_with_workers(0);
        b.iter(|| std::hint::black_box(dice.run(&router, &observed).runs))
    });

    let chain_seeds = [InputValues::new().with("v", 0).with("w", 0)];

    group.bench_function("multi_candidate_sequential_inner_loop", |b| {
        let engine = chain_engine(0, 1);
        b.iter(|| {
            let mut program = chain_program;
            std::hint::black_box(engine.explore(&mut program, &chain_seeds).stats.runs)
        })
    });

    group.bench_function("multi_candidate_batched_worklist", |b| {
        let engine = chain_engine(32, 2);
        b.iter(|| {
            let mut program = chain_program;
            std::hint::black_box(engine.explore(&mut program, &chain_seeds).stats.runs)
        })
    });

    group.finish();

    // Direct readout: the PR-1 sequential inner loop vs the batched
    // worklist engine on the multi-candidate chain. The run sets must be
    // identical; only the wall clock may differ.
    let started = Instant::now();
    let mut program = chain_program;
    let sequential_engine = chain_engine(0, 1).explore(&mut program, &chain_seeds);
    let sequential_inner = started.elapsed();
    let started = Instant::now();
    let mut program = chain_program;
    let batched_engine = chain_engine(32, 2).explore(&mut program, &chain_seeds);
    let batched_inner = started.elapsed();
    assert_eq!(
        sequential_engine.runs.len(),
        batched_engine.runs.len(),
        "batched engine must execute the same runs"
    );
    assert!(sequential_engine
        .runs
        .iter()
        .zip(batched_engine.runs.iter())
        .all(|(s, b)| s.output == b.output && s.trace.input == b.trace.input));
    println!(
        "\nmulti-candidate inner loop ({} runs, {} candidates): sequential {:?}, batched {:?}, speedup {:.2}x",
        batched_engine.stats.runs,
        batched_engine.stats.candidates,
        sequential_inner,
        batched_inner,
        sequential_inner.as_secs_f64() / batched_inner.as_secs_f64().max(f64::EPSILON),
    );

    // Direct speedup readout: same round, workers=1 vs all cores. The fault
    // sets must be identical; only the wall clock may differ.
    let started = Instant::now();
    let sequential = dice_with_workers(1).run(&router, &observed);
    let sequential_elapsed = started.elapsed();
    let started = Instant::now();
    let parallel = dice_with_workers(0).run(&router, &observed);
    let parallel_elapsed = started.elapsed();
    assert_eq!(
        sequential.faults, parallel.faults,
        "parallel round must find the same faults"
    );
    assert!(parallel.isolation_preserved && sequential.isolation_preserved);
    // The batched inner loop must find exactly the faults the PR-1
    // sequential inner loop found on the Figure 2 scenario.
    let sequential_inner_loop = Dice::with_config(
        DiceConfig::default()
            .with_engine(EngineConfig::default().with_max_runs(64).with_batch_size(0)),
    )
    .run(&router, &observed);
    assert_eq!(
        sequential_inner_loop.faults, parallel.faults,
        "batched worklist engine must find the same fault set"
    );
    println!(
        "\nmulti-input round ({} inputs, {} cores): sequential {:?}, parallel {:?}, speedup {:.2}x",
        observed.len(),
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        sequential_elapsed,
        parallel_elapsed,
        sequential_elapsed.as_secs_f64() / parallel_elapsed.as_secs_f64().max(f64::EPSILON),
    );
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
