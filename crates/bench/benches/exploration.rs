//! Experiment F1 (Figure 1): concolic exploration of a nested-branch
//! handler — the engine negates predicates to reach every path.

use criterion::{criterion_group, criterion_main, Criterion};
use dice_symexec::{ConcolicEngine, EngineConfig, ExecCtx, InputValues};

fn figure1_program(ctx: &mut ExecCtx, input: &InputValues) -> u32 {
    let x = ctx.symbolic_u32("x", input.get_or("x", 0) as u32);
    let y = ctx.symbolic_u32("y", input.get_or("y", 0) as u32);
    let p1 = x.gt_const(100, ctx);
    if ctx.branch_labeled("p1", p1) {
        let p2 = y.eq_const(7, ctx);
        if ctx.branch_labeled("p2", p2) {
            2
        } else {
            1
        }
    } else {
        0
    }
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("exploration");
    group.sample_size(20);

    group.bench_function("figure1_full_coverage", |b| {
        b.iter(|| {
            let engine = ConcolicEngine::with_config(EngineConfig { max_runs: 16, ..Default::default() });
            let mut program = figure1_program;
            let result = engine.explore(&mut program, &[InputValues::new().with("x", 5).with("y", 0)]);
            assert!(result.coverage.complete_sites() >= 2);
            std::hint::black_box(result.stats.runs)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
