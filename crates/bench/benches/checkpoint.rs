//! Experiment E2 substrate: checkpoint (fork) cost and copy-on-write page
//! accounting for exploration clones.

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bench::{install_victim_prefix, internet_trace, load_full_table, provider_router};
use dice_checkpoint::{CheckpointManager, Checkpointable};
use dice_core::{CheckpointedRouter, CustomerFilterMode};
use dice_netsim::TraceGenConfig;

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(10);

    let mut router = provider_router(CustomerFilterMode::Erroneous);
    install_victim_prefix(&mut router);
    let trace = internet_trace(&TraceGenConfig {
        prefix_count: 5_000,
        update_count: 0,
        ..Default::default()
    });
    load_full_table(&mut router, &trace);
    let manager = CheckpointManager::new(CheckpointedRouter(router));

    group.bench_function("serialize_router_state", |b| {
        b.iter(|| std::hint::black_box(manager.live().state().state_bytes().len()))
    });

    group.bench_function("take_checkpoint_fork", |b| {
        b.iter(|| {
            let checkpoint = manager.take_checkpoint();
            std::hint::black_box(checkpoint.memory().page_count())
        })
    });

    let checkpoint = manager.take_checkpoint();
    group.bench_function("unique_page_accounting", |b| {
        b.iter(|| std::hint::black_box(checkpoint.memory_stats_vs(manager.live()).unique_pages))
    });

    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
