//! Microbenchmark: filter interpretation, concrete (live path) vs symbolic
//! (exploration path) — the per-branch constraint-recording overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bgp::attributes::RouteAttrs;
use dice_bgp::prefix::Ipv4Prefix;
use dice_bgp::route::{PeerId, Route};
use dice_bgp::AsPath;
use dice_router::policy::{eval_filter, parse_filter, RouteView};
use dice_symexec::ExecCtx;
use std::net::Ipv4Addr;

const FILTER: &str = r#"
    filter customer_in {
        if net ~ [ 41.0.0.0/12{12,24} ] && source_as = 17557 then {
            local_pref = 200;
            accept;
        }
        if net ~ [ 208.65.152.0/22{22,24} ] then accept;
        reject;
    }
"#;

fn sample_route() -> Route {
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([17557, 17557]);
    attrs.next_hop = Ipv4Addr::new(10, 0, 1, 1);
    Route::new(
        "41.1.0.0/16".parse::<Ipv4Prefix>().unwrap(),
        attrs,
        PeerId(1),
        1,
    )
}

fn bench_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy");
    let filter = parse_filter(FILTER).expect("parses");
    let route = sample_route();

    group.bench_function("parse_filter", |b| {
        b.iter(|| std::hint::black_box(parse_filter(FILTER).unwrap()))
    });

    group.bench_function("eval_concrete", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new();
            std::hint::black_box(eval_filter(&filter, &RouteView::concrete(&route), &mut ctx))
        })
    });

    group.bench_function("eval_symbolic", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new();
            let view = RouteView {
                prefix_addr: ctx.symbolic_u32("nlri.addr", route.prefix.addr()),
                prefix_len: ctx.symbolic_u8("nlri.len", route.prefix.len()),
                source_as: ctx.symbolic_u32("attr.source_as", 17557),
                ..RouteView::concrete(&route)
            };
            std::hint::black_box(eval_filter(&filter, &view, &mut ctx))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_policy);
criterion_main!(benches);
