//! Policy-surface benchmarks.
//!
//! Two layers: a microbenchmark of filter interpretation — concrete (live
//! path) vs symbolic (exploration path, with per-arm site bookkeeping) —
//! and an end-to-end comparison of exploration with the policy surface
//! *opaque* (`symbolic_policy_fields(false)`, the pre-policy-sites
//! behaviour) vs *open* (policy sites registered, community / path-length
//! fields symbolic). The open run must find the community-gated leak the
//! opaque run provably cannot reach.
//!
//! Set `DICE_BENCH_POLICY_JSON=<path>` to write the comparison as a JSON
//! baseline artifact (CI uploads `BENCH_policy.json` for perf-trajectory
//! tracking).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bgp::attributes::RouteAttrs;
use dice_bgp::message::UpdateMessage;
use dice_bgp::prefix::Ipv4Prefix;
use dice_bgp::route::{PeerId, Route};
use dice_bgp::AsPath;
use dice_core::{DiceBuilder, DiceSession, ExplorationReport};
use dice_netsim::topology::{addr, asn, figure2_topology_with_customer_filter};
use dice_router::policy::{eval_filter, parse_filter, RouteView};
use dice_router::BgpRouter;
use dice_symexec::ExecCtx;
use std::net::Ipv4Addr;

const FILTER: &str = r#"
    filter customer_in {
        if net ~ [ 41.0.0.0/12{12,24} ] && source_as = 17557 then {
            local_pref = 200;
            accept;
        }
        if net ~ [ 208.65.152.0/22{22,24} ] then accept;
        reject;
    }
"#;

/// The community-gated leak from `tests/policy_divergence.rs`: the second
/// arm accepts more-specifics of the victim's /22 only when 3491:666 is
/// attached — reachable only through a solver-synthesized announcement.
const GATED_FILTER: &str = r#"
    filter customer_in {
        if net ~ [ 41.0.0.0/12{12,24} ] then accept;
        if community ~ (3491, 666) && net ~ [ 208.65.152.0/22{22,25} ] then accept;
        reject;
    }
"#;

fn sample_route() -> Route {
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([17557, 17557]);
    attrs.next_hop = Ipv4Addr::new(10, 0, 1, 1);
    Route::new(
        "41.1.0.0/16".parse::<Ipv4Prefix>().unwrap(),
        attrs,
        PeerId(1),
        1,
    )
}

/// The Provider with the gated filter, the victim /22 installed, and a
/// benign observed customer announcement carrying no communities.
fn gated_scenario() -> (BgpRouter, PeerId, UpdateMessage) {
    let topo =
        figure2_topology_with_customer_filter(parse_filter(GATED_FILTER).expect("valid filter"));
    let provider = topo.node_by_name("Provider").expect("node");
    let mut router = BgpRouter::new(topo.nodes()[provider.0].config.clone());
    router.start();

    let internet = router.peer_by_address(addr::INTERNET).expect("peer");
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356, asn::VICTIM]);
    router.handle_update(
        internet,
        &UpdateMessage::announce(vec!["208.65.152.0/22".parse().expect("valid")], &attrs),
    );

    let customer = router.peer_by_address(addr::CUSTOMER).expect("peer");
    let mut cattrs = RouteAttrs::default();
    cattrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
    let observed = UpdateMessage::announce(vec!["41.1.0.0/16".parse().expect("valid")], &cattrs);
    (router, customer, observed)
}

fn session(policy_fields: bool) -> DiceSession {
    DiceBuilder::new()
        .symbolic_policy_fields(policy_fields)
        .build()
}

fn bench_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy");
    let filter = parse_filter(FILTER).expect("parses");
    let route = sample_route();

    group.bench_function("parse_filter", |b| {
        b.iter(|| std::hint::black_box(parse_filter(FILTER).unwrap()))
    });

    group.bench_function("eval_concrete", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new();
            std::hint::black_box(eval_filter(&filter, &RouteView::concrete(&route), &mut ctx))
        })
    });

    group.bench_function("eval_symbolic", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new();
            let view = RouteView {
                prefix_addr: ctx.symbolic_u32("nlri.addr", route.prefix.addr()),
                prefix_len: ctx.symbolic_u8("nlri.len", route.prefix.len()),
                source_as: ctx.symbolic_u32("attr.source_as", 17557),
                ..RouteView::concrete(&route)
            };
            std::hint::black_box(eval_filter(&filter, &view, &mut ctx))
        })
    });

    group.finish();

    let (router, customer, observed) = gated_scenario();
    let inputs = [(customer, observed)];

    let mut group = c.benchmark_group("policy_exploration");
    group.sample_size(10);

    group.bench_function("opaque_fields", |b| {
        let opaque = session(false);
        b.iter(|| std::hint::black_box(opaque.explore(&router, &inputs).runs))
    });

    group.bench_function("policy_sites", |b| {
        let open = session(true);
        b.iter(|| std::hint::black_box(open.explore(&router, &inputs).runs))
    });

    group.finish();

    // Direct readout + JSON baseline: what opening the policy surface
    // costs, and what it buys (the gated leak only the open run finds).
    let reps: u32 = std::env::var("DICE_BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let time = |s: &DiceSession| -> (Duration, ExplorationReport) {
        let mut best = Duration::MAX;
        let mut last = ExplorationReport::default();
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            last = s.explore(&router, &inputs);
            best = best.min(start.elapsed());
        }
        (best, last)
    };
    let (opaque_time, opaque) = time(&session(false));
    let (open_time, open) = time(&session(true));
    assert!(
        !opaque.has_faults(),
        "with the policy surface opaque the gated leak is unreachable"
    );
    assert!(
        open.has_faults(),
        "with policy sites open the solver synthesizes the gating community"
    );
    assert!(open.policy_sites >= 2, "both filter arms are registered");
    assert!(open.solver_stats.policy_queries > 0);
    let overhead = open_time.as_secs_f64() / opaque_time.as_secs_f64().max(f64::EPSILON);
    println!(
        "\npolicy exploration (1 input, gated filter): opaque {:?} ({} runs, {} fault(s)), \
         open {:?} ({} runs, {} fault(s), {:.0}% policy coverage), overhead {overhead:.2}x",
        opaque_time,
        opaque.runs,
        opaque.faults.len(),
        open_time,
        open.runs,
        open.faults.len(),
        open.policy_branch_coverage() * 100.0,
    );

    if let Ok(path) = std::env::var("DICE_BENCH_POLICY_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"policy_gated_leak_round\",\n  \"opaque_ns\": {},\n  \
             \"opaque_runs\": {},\n  \"opaque_faults\": {},\n  \"open_ns\": {},\n  \
             \"open_runs\": {},\n  \"open_faults\": {},\n  \"policy_sites\": {},\n  \
             \"policy_directions\": {},\n  \"policy_queries\": {},\n  \
             \"overhead\": {overhead:.4}\n}}\n",
            opaque_time.as_nanos(),
            opaque.runs,
            opaque.faults.len(),
            open_time.as_nanos(),
            open.runs,
            open.faults.len(),
            open.policy_sites,
            open.policy_directions,
            open.solver_stats.policy_queries,
        );
        std::fs::write(&path, json).expect("write bench baseline");
        println!("wrote perf baseline to {path}");
    }
}

criterion_group!(benches, bench_policy);
criterion_main!(benches);
