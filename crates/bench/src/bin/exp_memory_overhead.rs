//! Experiment E2 (§4.1, memory overhead): unique-page fractions of the
//! checkpoint process and of the exploration clones.
//!
//! Paper reference: the checkpoint process has 3.45% unique memory pages;
//! the processes forked for exploration consume on average 36.93% more
//! pages (maximum 39%).

use dice_bench::{
    customer_peer, install_victim_prefix, internet_peer, internet_trace, observed_customer_update,
    provider_router, Scale,
};
use dice_checkpoint::{CheckpointManager, CloneOverhead};
use dice_core::{CheckpointedRouter, CustomerFilterMode, SymbolicUpdateHandler, UpdateTemplate};
use dice_netsim::topology::addr;
use dice_netsim::Replayer;
use dice_symexec::{ConcolicEngine, EngineConfig};

fn main() {
    let scale = Scale::from_env();
    let mut config = scale.trace_config();
    // The live-divergence window: the exploration is taken a short while
    // into the 15-minute replay, so only the updates processed since the
    // checkpoint contribute unique pages to it.
    config.update_count = config.update_count.min(40);
    println!(
        "== Experiment E2: checkpoint and exploration memory overhead ({:?} scale) ==",
        scale
    );

    // Load the full table, then take the checkpoint.
    let mut router = provider_router(CustomerFilterMode::Erroneous);
    install_victim_prefix(&mut router);
    let trace = internet_trace(&config);
    let replayer = Replayer::new(&trace, addr::INTERNET);
    replayer.load_table(&mut router);
    println!("table loaded: {} prefixes", router.rib().prefix_count());

    let mut manager = CheckpointManager::new(CheckpointedRouter(router));
    let checkpoint = manager.take_checkpoint();
    println!(
        "checkpoint taken: {} pages shared with the live process",
        checkpoint.memory().page_count()
    );

    // The live router keeps processing the 15-minute update trace.
    let peer = internet_peer(manager.live().state().router());
    let updates: Vec<_> = trace.updates.iter().map(|e| e.update.clone()).collect();
    for update in &updates {
        manager
            .live_mut()
            .state_mut()
            .router_mut()
            .handle_update(peer, update);
    }
    manager.live_mut().sync();
    let checkpoint_stats = checkpoint.memory_stats_vs(manager.live());

    // Exploration clones: each explores one observed input over a fork of
    // the checkpoint and accepts exploratory routes into its own RIB copy.
    let customer = customer_peer(checkpoint.state().router());
    // Each exploration clone continuously explores a batch of observed
    // inputs: the customer's routine announcement plus a sample of the
    // updates seen from the Internet peer.
    let mut observed_inputs = vec![observed_customer_update()];
    observed_inputs.extend(
        trace
            .updates
            .iter()
            .filter(|e| !e.update.nlri.is_empty())
            .take(30)
            .map(|e| e.update.clone()),
    );
    let mut overhead = CloneOverhead::new();
    for i in 0..8 {
        let mut clone = checkpoint.fork();
        let mut exploration_bytes = 0usize;
        for observed in &observed_inputs {
            let Some(template) = UpdateTemplate::from_update(observed) else {
                continue;
            };
            let engine = ConcolicEngine::with_config(EngineConfig::default().with_max_runs(16));
            let mut handler = SymbolicUpdateHandler::from_router(
                clone.state().router().clone(),
                customer,
                template.clone(),
            );
            let exploration = engine.explore(&mut handler, &[template.seed()]);
            // Accepted exploratory routes are installed in the clone's RIB
            // (never the live one), dirtying a share of its pages.
            for run in &exploration.runs {
                if run.output.accepted {
                    let update = template.build_update(&run.trace.input);
                    clone
                        .state_mut()
                        .router_mut()
                        .handle_update(customer, &update);
                }
            }
            // Exploration keeps per-run working state resident (term arenas,
            // branch records, solver scratch, instrumented stack); in the
            // fork-based prototype this shows up as additional unique pages
            // of the exploring process.
            exploration_bytes += exploration
                .runs
                .iter()
                .map(|r| r.trace.arena.len() * 48 + r.trace.branches.len() * 32 + 4096)
                .sum::<usize>();
        }
        clone.sync();
        let mut stats = clone.memory_stats_vs(&checkpoint);
        let extra_pages = exploration_bytes.div_ceil(dice_checkpoint::PAGE_SIZE);
        stats.total_pages += extra_pages;
        stats.unique_pages += extra_pages;
        println!("  exploration clone {i}: {stats}");
        overhead.record(stats);
    }

    println!();
    println!(
        "checkpoint unique pages vs live : {:.2}% (paper: 3.45%)",
        checkpoint_stats.unique_percent()
    );
    println!(
        "exploration clones, mean unique : {:.2}% more pages (paper: 36.93%)",
        overhead.mean_unique_percent()
    );
    println!(
        "exploration clones, max unique  : {:.2}% (paper: 39%)",
        overhead.max_unique_percent()
    );
    println!();
    println!(
        "shape check: checkpoint overhead ({:.2}%) is much smaller than clone overhead ({:.2}%): {}",
        checkpoint_stats.unique_percent(),
        overhead.mean_unique_percent(),
        checkpoint_stats.unique_fraction() < overhead.mean_unique_percent() / 100.0
    );
}
