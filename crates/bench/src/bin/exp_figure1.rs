//! Experiment F1 (Figure 1): a concolic execution engine negates branch
//! predicates to systematically explore code paths.
//!
//! The program under test has the three-block structure of the paper's
//! Figure 1; starting from one observed input, the engine discovers the
//! paths obtained by negating predicate #1 and predicate #2.

use dice_symexec::{ConcolicEngine, EngineConfig, ExecCtx, InputValues};

fn handler(ctx: &mut ExecCtx, input: &InputValues) -> &'static str {
    let x = ctx.symbolic_u32("x", input.get_or("x", 0) as u32);
    let y = ctx.symbolic_u32("y", input.get_or("y", 0) as u32);
    let p1 = x.gt_const(100, ctx);
    if ctx.branch_labeled("predicate #1", p1) {
        let p2 = y.eq_const(7, ctx);
        if ctx.branch_labeled("predicate #2", p2) {
            "path c (negated predicate #1 then #2 satisfied)"
        } else {
            "path b (negated predicate #2)"
        }
    } else {
        "path a (real input)"
    }
}

fn main() {
    println!("== Experiment F1: concolic predicate negation (paper Figure 1) ==");
    let seed = InputValues::new().with("x", 5).with("y", 0);
    println!("observed input: {seed}");
    let engine = ConcolicEngine::with_config(EngineConfig::default().with_max_runs(16));
    let mut program = handler;
    let result = engine.explore(&mut program, &[seed]);

    println!("runs executed: {}", result.stats.runs);
    println!("distinct paths: {}", result.distinct_paths());
    for (i, run) in result.runs.iter().enumerate() {
        let kind = if run.parent.is_none() {
            "seed     "
        } else {
            "generated"
        };
        println!(
            "  run {i}: [{kind}] input={} -> {}",
            run.trace.input, run.output
        );
    }
    println!(
        "branch sites covered both ways: {}/{}",
        result.coverage.complete_sites(),
        result.coverage.site_count()
    );
    println!(
        "solver: sat={} unsat={} unknown={}",
        result.stats.solver_sat, result.stats.solver_unsat, result.stats.solver_unknown
    );
    assert!(
        result.coverage.complete_sites() >= 2,
        "both predicates must be negated"
    );
    println!("PASS: all paths of the Figure 1 program were explored from one observed input");
}
