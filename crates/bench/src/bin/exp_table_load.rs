//! Experiment E1: load a full RouteViews-like table into the DiCE-enabled
//! Provider router (the paper loads 319,355 prefixes).
//!
//! Run with `DICE_FULL_TABLE=1` for the paper-scale table.

use dice_bench::{internet_trace, provider_router, Scale};
use dice_core::CustomerFilterMode;
use dice_netsim::{topology::addr, Replayer};

fn main() {
    let scale = Scale::from_env();
    let config = scale.trace_config();
    println!("== Experiment E1: full-table load ({:?} scale) ==", scale);
    println!(
        "generating synthetic RouteViews-like trace: {} prefixes...",
        config.prefix_count
    );
    let trace = internet_trace(&config);

    let mut router = provider_router(CustomerFilterMode::Erroneous);
    let replayer = Replayer::new(&trace, addr::INTERNET);
    let stats = replayer.load_table(&mut router);

    println!("prefixes loaded into Loc-RIB : {}", stats.rib_prefixes);
    println!("table-dump updates processed: {}", stats.updates_fed);
    println!(
        "table-load throughput       : {:.1} updates/s",
        stats.updates_per_second
    );
    println!("paper reference             : 319,355 prefixes loaded from the RouteViews dump");
    assert_eq!(stats.rib_prefixes, config.prefix_count);
    println!("PASS: the full table was installed");
}
