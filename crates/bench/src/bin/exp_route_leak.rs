//! Experiment E5 (§4.2, detecting route leaks): DiCE explores the execution
//! paths of the Provider's (mis)configured customer import filter and flags
//! exploratory announcements that would override the origin AS of an
//! installed route — before any hijack happens in the live network.

use dice_bench::{
    customer_peer, install_victim_prefix, internet_trace, load_full_table,
    observed_customer_update, provider_router, Scale,
};
use dice_core::{CustomerFilterMode, Dice, DiceConfig};
use dice_symexec::EngineConfig;

fn run_mode(mode: CustomerFilterMode, table_prefixes: usize) -> dice_core::ExplorationReport {
    let mut router = provider_router(mode);
    install_victim_prefix(&mut router);
    if table_prefixes > 0 {
        let mut config = Scale::Quick.trace_config();
        config.prefix_count = table_prefixes;
        config.update_count = 0;
        let trace = internet_trace(&config);
        load_full_table(&mut router, &trace);
    }
    let customer = customer_peer(&router);
    let observed = observed_customer_update();
    let dice = Dice::with_config(
        DiceConfig::default().with_engine(EngineConfig::default().with_max_runs(64)),
    );
    dice.run_single(&router, customer, &observed)
}

fn main() {
    println!("== Experiment E5: detecting origin misconfiguration (route leaks) ==");
    let table_prefixes = match Scale::from_env() {
        Scale::Quick => 2_000,
        Scale::Paper => 319_355,
    };

    for (mode, label, expect_fault) in [
        (
            CustomerFilterMode::Correct,
            "correct customer filter",
            false,
        ),
        (
            CustomerFilterMode::Erroneous,
            "erroneous (partially correct) filter",
            true,
        ),
        (
            CustomerFilterMode::Missing,
            "missing filter (no policy branches to explore)",
            false,
        ),
    ] {
        let report = run_mode(mode, table_prefixes);
        println!("--- {label} ---");
        println!(
            "runs={} paths={} generated_inputs={} branch_sites={} isolation_preserved={}",
            report.runs,
            report.distinct_paths,
            report.generated_inputs,
            report.branch_sites,
            report.isolation_preserved
        );
        if report.has_faults() {
            println!("faults detected: {}", report.faults.len());
            let leaked: Vec<String> = report
                .leaked_prefixes()
                .iter()
                .map(|p| p.to_string())
                .collect();
            println!("leakable prefix ranges: {}", leaked.join(", "));
        } else {
            println!("no faults detected");
        }
        assert_eq!(
            report.has_faults(),
            expect_fault,
            "unexpected outcome for {label}"
        );
        assert!(
            report.isolation_preserved,
            "exploration must not touch the live router"
        );
        println!();
    }
    println!("paper reference: DiCE detects the hijackable prefix ranges enabled by the");
    println!("misconfigured customer route filtering, and states which ranges can be leaked.");
    println!("PASS: erroneous filter flagged, correct filter clean, isolation preserved");
}
