//! Experiments E3/E4 (§4.1, CPU/performance): updates handled per second by
//! the DiCE-enabled router with and without exploration sharing its core.
//!
//! Paper reference: 13.9 updates/s with exploration vs 15.1 without under
//! full load (~8% impact); 0.272 vs 0.287 updates/s in the realistic
//! real-time replay scenario (negligible).
//!
//! Pass `--scenario full-load` (default) or `--scenario realtime`.

use dice_bench::{
    customer_peer, install_victim_prefix, internet_peer, internet_trace, observed_customer_update,
    provider_router, Scale,
};
use dice_core::{CustomerFilterMode, Dice, DiceConfig, SharedCoreScheduler};
use dice_netsim::topology::addr;
use dice_netsim::{slowdown_percent, Replayer};
use dice_symexec::EngineConfig;

fn scenario_arg() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "full-load".to_string())
}

fn main() {
    let scale = Scale::from_env();
    let scenario = scenario_arg();
    let mut config = scale.trace_config();
    println!(
        "== Experiment E3/E4: CPU overhead of exploration ({:?} scale, {scenario}) ==",
        scale
    );

    // In the realistic scenario the table is loaded first and only the
    // 15-minute incremental trace is measured; under full load the table
    // dump itself is the measured workload.
    let realtime = scenario == "realtime";
    if realtime {
        config.update_count = config.update_count.max(2_000);
    }
    let trace = internet_trace(&config);
    let observed = observed_customer_update();

    // In the realistic scenario updates arrive at the trace's real-time
    // pace, so the relevant throughput denominator is the trace window:
    // exploration runs in the router's idle time and its cost only shows up
    // if processing no longer fits in the window.
    let run = |with_exploration: bool| -> f64 {
        let mut router = provider_router(CustomerFilterMode::Erroneous);
        install_victim_prefix(&mut router);
        let internet = internet_peer(&router);
        let customer = customer_peer(&router);
        let replayer = Replayer::new(&trace, addr::INTERNET);
        let measured_updates: Vec<_> = if realtime {
            replayer.load_table(&mut router);
            trace.updates.iter().map(|e| e.update.clone()).collect()
        } else {
            trace.table.clone()
        };
        let dice = Dice::with_config(
            DiceConfig::default().with_engine(EngineConfig::default().with_max_runs(8)),
        );
        let checkpoint = router.clone();
        let scheduler = if with_exploration {
            SharedCoreScheduler { explore_every: 256 }
        } else {
            SharedCoreScheduler::baseline()
        };
        let started = std::time::Instant::now();
        let result = scheduler.run(&mut router, internet, &measured_updates, || {
            std::hint::black_box(dice.run_single(&checkpoint, customer, &observed).runs);
        });
        if realtime {
            let busy = started.elapsed().as_secs_f64();
            let window = config.duration_secs as f64;
            result.updates_processed as f64 / busy.max(window)
        } else {
            result.updates_per_second
        }
    };

    let baseline = run(false);
    let with_exploration = run(true);
    let impact = slowdown_percent(baseline, with_exploration);

    println!("updates/s without exploration : {baseline:.1}");
    println!("updates/s with exploration    : {with_exploration:.1}");
    println!("performance impact            : {impact:.1}%");
    if realtime {
        println!("paper reference (realistic)   : 0.287 vs 0.272 updates/s, negligible impact");
    } else {
        println!("paper reference (full load)   : 15.1 vs 13.9 updates/s, ~8% impact");
    }
    println!(
        "shape check: exploration impact is bounded (< 30%): {}",
        impact < 30.0
    );
}
