//! # dice-bench
//!
//! Shared scenario builders for the Criterion benchmarks and the
//! experiment binaries that regenerate the paper's evaluation (§4).
//!
//! Every experiment uses the Figure 2 topology: a Customer and the "rest of
//! the Internet" peering with the DiCE-enabled Provider router. The helpers
//! here build that router, load a synthetic RouteViews-like table into it,
//! and produce the observed customer announcement that seeds exploration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::net::Ipv4Addr;

use dice_bgp::attributes::RouteAttrs;
use dice_bgp::message::UpdateMessage;
use dice_bgp::route::PeerId;
use dice_bgp::AsPath;
use dice_core::CustomerFilterMode;
use dice_netsim::topology::{addr, asn, figure2_topology};
use dice_netsim::{generate_trace, BgpTrace, Replayer, TraceGenConfig};
use dice_router::BgpRouter;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A quick run with a scaled-down table (default for CI and benches).
    Quick,
    /// The paper's scale: 319,355 prefixes and a 15-minute update trace.
    Paper,
}

impl Scale {
    /// Reads the scale from the `DICE_FULL_TABLE` environment variable
    /// (`1`/`true` selects [`Scale::Paper`]).
    pub fn from_env() -> Self {
        match std::env::var("DICE_FULL_TABLE").ok().as_deref() {
            Some("1") | Some("true") | Some("yes") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// The trace-generator configuration for this scale.
    pub fn trace_config(self) -> TraceGenConfig {
        match self {
            Scale::Quick => TraceGenConfig {
                prefix_count: 20_000,
                update_count: 4_000,
                ..Default::default()
            },
            Scale::Paper => TraceGenConfig::paper_scale(),
        }
    }
}

/// The DiCE-enabled Provider router of Figure 2, with sessions established.
pub fn provider_router(mode: CustomerFilterMode) -> BgpRouter {
    let topo = figure2_topology(mode);
    let provider = topo
        .node_by_name("Provider")
        .expect("Provider exists in Figure 2");
    let mut router = BgpRouter::new(topo.nodes()[provider.0].config.clone());
    router.start();
    router
}

/// Generates the "rest of the Internet" trace announced to the Provider.
pub fn internet_trace(config: &TraceGenConfig) -> BgpTrace {
    generate_trace(config, asn::INTERNET, addr::INTERNET)
}

/// Loads the trace's table dump into the router via the Internet peer and
/// returns the number of prefixes installed.
pub fn load_full_table(router: &mut BgpRouter, trace: &BgpTrace) -> usize {
    let replayer = Replayer::new(trace, addr::INTERNET);
    replayer.load_table(router).rib_prefixes
}

/// Installs the victim prefix (YouTube's 208.65.152.0/22, origin AS 36561)
/// as learned from the Internet peer.
pub fn install_victim_prefix(router: &mut BgpRouter) {
    let peer = router
        .peer_by_address(addr::INTERNET)
        .expect("Internet peer configured");
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356, asn::VICTIM]);
    attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
    router.handle_update(
        peer,
        &UpdateMessage::announce(
            vec!["208.65.152.0/22".parse().expect("valid prefix")],
            &attrs,
        ),
    );
}

/// The customer's routine announcement of its own block: the observed input
/// DiCE derives exploratory messages from.
pub fn observed_customer_update() -> UpdateMessage {
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
    attrs.next_hop = Ipv4Addr::new(10, 0, 1, 1);
    UpdateMessage::announce(vec!["41.1.0.0/16".parse().expect("valid prefix")], &attrs)
}

/// The Provider's customer peer id.
pub fn customer_peer(router: &BgpRouter) -> PeerId {
    router
        .peer_by_address(addr::CUSTOMER)
        .expect("Customer peer configured")
}

/// The Provider's Internet peer id.
pub fn internet_peer(router: &BgpRouter) -> PeerId {
    router
        .peer_by_address(addr::INTERNET)
        .expect("Internet peer configured")
}

/// A batch of distinct announcements used to drive throughput measurements.
pub fn throughput_updates(count: u32) -> Vec<UpdateMessage> {
    (0..count)
        .map(|i| {
            let mut attrs = RouteAttrs::default();
            attrs.as_path = AsPath::from_sequence([asn::INTERNET, 200_000 + i]);
            attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
            let prefix =
                dice_bgp::Ipv4Prefix::new((60u32 << 24) | (i << 8), 24).expect("valid prefix");
            UpdateMessage::announce(vec![prefix], &attrs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builders_work_together() {
        let mut router = provider_router(CustomerFilterMode::Erroneous);
        install_victim_prefix(&mut router);
        assert_eq!(router.rib().prefix_count(), 1);
        let trace = internet_trace(&TraceGenConfig::tiny());
        let installed = load_full_table(&mut router, &trace);
        assert!(installed > 100);
        let _ = customer_peer(&router);
        let _ = internet_peer(&router);
        assert_eq!(observed_customer_update().nlri.len(), 1);
        assert_eq!(throughput_updates(10).len(), 10);
        assert_eq!(Scale::Quick.trace_config().prefix_count, 20_000);
        assert_eq!(Scale::Paper.trace_config().prefix_count, 319_355);
    }
}
