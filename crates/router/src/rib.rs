//! Routing information bases: Adj-RIB-In, Loc-RIB and Adj-RIB-Out.
//!
//! The RIB is the node state that DiCE checkpoints and that the hijack
//! checker inspects ("a route already in the routing table prior to
//! starting exploration", paper §4.2).
//!
//! # Sharding and copy-on-write
//!
//! At the paper's scale (a 319,355-prefix full table) a single trie makes
//! two hot paths serialize on one core: loading the table, and cloning the
//! table for every exploration checkpoint. The RIB is therefore split into
//! `N` independent tries (`N` a power of two, sized from the machine's
//! available cores by default) keyed by the top `log2(N)` bits of the
//! prefix address; prefixes shorter than `log2(N)` bits live in a small
//! shared "short" trie. Every shard sits behind an [`Arc`]:
//!
//! * **sharded operation** — announce, withdraw, reselection and lookups
//!   touch exactly one shard (plus, for covering queries, the short trie),
//!   and [`Rib::load_parallel`] loads disjoint shard buckets on worker
//!   threads with no cross-shard locking;
//! * **copy-on-write forking** — `Rib::clone` is `N` reference-count
//!   bumps (the fork/checkpoint operation); the first write to a shard
//!   after a fork copies just that shard ([`Arc::make_mut`]), so a live
//!   router and its exploration checkpoints share every shard neither
//!   side has touched. [`Rib::deep_clone`] keeps the old copy-everything
//!   behaviour for equivalence anchors and benchmarks.
//!
//! Sharding is an implementation detail: for any shard count the RIB is
//! observationally identical (asserted by property test), and
//! [`Rib::loc_rib`] merges shards back into the exact canonical prefix
//! order a single trie iterates in, so every digest built by walking the
//! table stays byte-identical.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::iter::Peekable;
use std::sync::Arc;

use dice_bgp::prefix::Ipv4Prefix;
use dice_bgp::route::{PeerId, Route};

use crate::decision::best_of;
use crate::trie::{Iter as TrieIter, PrefixTrie};

/// The effect of applying an announcement or withdrawal to the Loc-RIB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RibChange {
    /// The best route for the prefix changed to the contained route.
    Updated(Route),
    /// The prefix no longer has any route.
    Removed(Ipv4Prefix),
    /// The best route did not change.
    Unchanged,
}

impl RibChange {
    /// Returns true if the Loc-RIB was modified.
    pub fn is_change(&self) -> bool {
        !matches!(self, RibChange::Unchanged)
    }
}

/// The per-prefix candidate set plus the selected best route.
#[derive(Debug, Clone, Default)]
struct PrefixEntry {
    /// Candidate routes, keyed by the peer they were learned from.
    candidates: BTreeMap<PeerId, Route>,
    /// Index of the best route's peer, if any.
    best: Option<PeerId>,
}

/// One independent slice of the routing table: a trie over the prefixes
/// whose top bits route to this shard, plus its local counters. Shards
/// never reference each other, so per-shard operations need no
/// coordination and a shard is the unit of copy-on-write.
#[derive(Debug, Clone, Default)]
struct RibShard {
    table: PrefixTrie<PrefixEntry>,
    /// Number of prefixes with at least one candidate, in this shard.
    prefixes: usize,
    /// Total number of candidate routes, in this shard.
    candidates: usize,
}

impl RibShard {
    /// Inserts or replaces the route learned from `route.learned_from`,
    /// re-runs the decision process and reports the Loc-RIB change.
    ///
    /// This is the hot path of UPDATE processing (and of every concolic
    /// re-execution), so it allocates nothing beyond trie growth: the
    /// previous best is snapshotted only when the announce overwrites it in
    /// place, and reselection scans the candidate map without materializing
    /// it.
    fn announce(&mut self, route: Route) -> RibChange {
        let prefix = route.prefix;
        let peer = route.learned_from;
        if self.table.get(&prefix).is_none() {
            self.table.insert(prefix, PrefixEntry::default());
            self.prefixes += 1;
        }
        let entry = self.table.get_mut(&prefix).expect("entry just ensured");
        let old_best_peer = entry.best;
        // The only state the insert below can destroy is the best route
        // itself (a re-announcement from the best peer); everything else
        // survives in the map and needs no defensive clone.
        let overwritten_best = match old_best_peer {
            Some(bp) if bp == peer => entry.candidates.get(&bp).cloned(),
            _ => None,
        };
        if entry.candidates.insert(peer, route).is_none() {
            self.candidates += 1;
        }
        Self::reselect(entry);
        match (old_best_peer, entry.best) {
            (None, Some(new)) => RibChange::Updated(entry.candidates[&new].clone()),
            (Some(old), Some(new)) if old != new => {
                RibChange::Updated(entry.candidates[&new].clone())
            }
            (Some(old), Some(_)) if old == peer => {
                // Same best peer; did the re-announcement change the route?
                let current = &entry.candidates[&old];
                if overwritten_best.as_ref() == Some(current) {
                    RibChange::Unchanged
                } else {
                    RibChange::Updated(current.clone())
                }
            }
            // Same best peer, untouched by this announce.
            (Some(_), Some(_)) => RibChange::Unchanged,
            // An announce never empties a candidate set.
            (_, None) => RibChange::Unchanged,
        }
    }

    /// Removes the route learned from `peer` for `prefix`, if any.
    fn withdraw(&mut self, prefix: &Ipv4Prefix, peer: PeerId) -> RibChange {
        let Some(entry) = self.table.get_mut(prefix) else {
            return RibChange::Unchanged;
        };
        let old_best_peer = entry.best;
        if entry.candidates.remove(&peer).is_none() {
            return RibChange::Unchanged;
        }
        self.candidates -= 1;
        if entry.candidates.is_empty() {
            self.table.remove(prefix);
            self.prefixes -= 1;
            return match old_best_peer {
                Some(_) => RibChange::Removed(*prefix),
                None => RibChange::Unchanged,
            };
        }
        if old_best_peer != Some(peer) {
            // Removing a non-best candidate cannot change the winner.
            return RibChange::Unchanged;
        }
        Self::reselect(entry);
        match entry.best {
            Some(new) => RibChange::Updated(entry.candidates[&new].clone()),
            None => RibChange::Removed(*prefix),
        }
    }

    fn reselect(entry: &mut PrefixEntry) {
        entry.best = best_of(entry.candidates.values()).map(|r| r.learned_from);
    }
}

/// The canonical table order: lexicographic over prefix bit strings, with
/// a prefix sorting before anything it covers. This is exactly the order a
/// pre-order depth-first walk of a single trie yields, so merging shards
/// under it reproduces the unsharded iteration byte for byte.
fn canonical_cmp(a: Ipv4Prefix, b: Ipv4Prefix) -> Ordering {
    let common = a.len().min(b.len());
    let mask = if common == 0 {
        0
    } else {
        u32::MAX << (32 - common)
    };
    (a.addr() & mask)
        .cmp(&(b.addr() & mask))
        .then(a.len().cmp(&b.len()))
}

/// The router's routing table.
///
/// Internally a power-of-two set of independent tries (see the module
/// docs) maps each prefix to its candidate set (the Adj-RIBs-In merged per
/// prefix) and the selected best route (the Loc-RIB view). `Clone` is the
/// copy-on-write fork: shards are shared until written.
#[derive(Debug, Clone)]
pub struct Rib {
    /// `2^shard_bits` shards, each owning the prefixes whose top
    /// `shard_bits` address bits equal the shard index.
    shards: Vec<Arc<RibShard>>,
    /// Prefixes shorter than `shard_bits` (they span several shards).
    short: Arc<RibShard>,
    shard_bits: u8,
}

impl Default for Rib {
    fn default() -> Self {
        Rib::with_shard_count(default_shard_count())
    }
}

/// The default shard count: the machine's available parallelism rounded up
/// to a power of two, clamped to `[1, 64]` so forks stay a handful of
/// reference-count bumps even on very wide machines.
fn default_shard_count() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
        .next_power_of_two()
        .clamp(1, 64)
}

impl Rib {
    /// Creates an empty RIB with the default shard count (sized from the
    /// machine's available cores).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty RIB with `count` shards, rounded up to the nearest
    /// power of two and clamped to `[1, 256]`. Shard count is invisible to
    /// every query — it only changes how operations spread across cores
    /// and how much a fork copies on first write.
    pub fn with_shard_count(count: usize) -> Self {
        let count = count.next_power_of_two().clamp(1, 256);
        let shard_bits = count.trailing_zeros() as u8;
        Rib {
            shards: (0..count).map(|_| Arc::new(RibShard::default())).collect(),
            short: Arc::new(RibShard::default()),
            shard_bits,
        }
    }

    /// The number of shards the table is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `prefix`, or `None` for prefixes shorter
    /// than the shard key (those live in the shared short trie).
    fn shard_index(&self, prefix: &Ipv4Prefix) -> Option<usize> {
        if self.shard_bits == 0 {
            return Some(0);
        }
        if prefix.len() < self.shard_bits {
            return None;
        }
        Some((prefix.addr() >> (32 - self.shard_bits as u32)) as usize)
    }

    /// The shard (or short trie) holding `prefix`, read-only.
    fn home(&self, prefix: &Ipv4Prefix) -> &RibShard {
        match self.shard_index(prefix) {
            Some(i) => &self.shards[i],
            None => &self.short,
        }
    }

    /// The shard (or short trie) holding `prefix`, for writing: the
    /// copy-on-write point — a shard still shared with a fork is copied
    /// here, and only here.
    fn home_mut(&mut self, prefix: &Ipv4Prefix) -> &mut RibShard {
        match self.shard_index(prefix) {
            Some(i) => Arc::make_mut(&mut self.shards[i]),
            None => Arc::make_mut(&mut self.short),
        }
    }

    /// Number of prefixes with at least one route.
    pub fn prefix_count(&self) -> usize {
        self.short.prefixes + self.shards.iter().map(|s| s.prefixes).sum::<usize>()
    }

    /// Total number of candidate routes across all peers.
    pub fn route_count(&self) -> usize {
        self.short.candidates + self.shards.iter().map(|s| s.candidates).sum::<usize>()
    }

    /// Inserts or replaces the route learned from `route.learned_from` for
    /// `route.prefix`, re-runs the decision process and reports the change.
    /// Touches exactly one shard.
    pub fn announce(&mut self, route: Route) -> RibChange {
        let prefix = route.prefix;
        self.home_mut(&prefix).announce(route)
    }

    /// Removes the route learned from `peer` for `prefix`, if any.
    /// Touches exactly one shard.
    pub fn withdraw(&mut self, prefix: &Ipv4Prefix, peer: PeerId) -> RibChange {
        let slot = match self.shard_index(prefix) {
            Some(i) => &mut self.shards[i],
            None => &mut self.short,
        };
        // Uniquely owned shard (the steady state of a live router whose
        // checkpoints have diverged): mutate in place, one trie walk.
        if let Some(shard) = Arc::get_mut(slot) {
            return shard.withdraw(prefix, peer);
        }
        // The shard is shared with a fork: pay the copy-on-write clone
        // only when the withdrawal will actually change something.
        if !slot
            .table
            .get(prefix)
            .is_some_and(|e| e.candidates.contains_key(&peer))
        {
            return RibChange::Unchanged;
        }
        Arc::make_mut(slot).withdraw(prefix, peer)
    }

    /// Loads a batch of routes, fanned out across `workers` threads
    /// (`0` uses the machine's available parallelism) with each worker
    /// announcing into a disjoint set of shards — no locks, no contention.
    /// Returns the number of routes applied.
    ///
    /// Equivalent to announcing the routes in order (asserted by test):
    /// routes for the same prefix keep their relative order because they
    /// share a shard bucket.
    pub fn load_parallel(&mut self, routes: Vec<Route>, workers: usize) -> usize {
        let total = routes.len();
        let mut buckets: Vec<Vec<Route>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut short_routes = Vec::new();
        for route in routes {
            match self.shard_index(&route.prefix) {
                Some(i) => buckets[i].push(route),
                None => short_routes.push(route),
            }
        }
        // Short prefixes are rare in real tables; load them inline.
        if !short_routes.is_empty() {
            let short = Arc::make_mut(&mut self.short);
            for route in short_routes {
                short.announce(route);
            }
        }
        let workers = match workers {
            0 => std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
            n => n,
        };
        let mut jobs: Vec<(&mut RibShard, Vec<Route>)> = self
            .shards
            .iter_mut()
            .zip(buckets)
            .filter(|(_, bucket)| !bucket.is_empty())
            .map(|(shard, bucket)| (Arc::make_mut(shard), bucket))
            .collect();
        if jobs.is_empty() {
            return total;
        }
        if workers <= 1 || jobs.len() == 1 {
            for (shard, bucket) in jobs {
                for route in bucket {
                    shard.announce(route);
                }
            }
            return total;
        }
        // Balance by route volume, not shard count: real tables skew
        // heavily across the top address bits, so contiguous chunking
        // could hand one worker almost everything. Greedy
        // longest-processing-time assignment: largest buckets first, each
        // to the currently lightest worker.
        let worker_count = workers.min(jobs.len());
        jobs.sort_by_key(|(_, bucket)| std::cmp::Reverse(bucket.len()));
        // Per worker: (routes assigned, shard jobs to run).
        type WorkerGroup<'a> = (usize, Vec<(&'a mut RibShard, Vec<Route>)>);
        let mut groups: Vec<WorkerGroup<'_>> = (0..worker_count).map(|_| (0, Vec::new())).collect();
        for job in jobs {
            let lightest = groups
                .iter_mut()
                .min_by_key(|(load, _)| *load)
                .expect("worker_count >= 1");
            lightest.0 += job.1.len();
            lightest.1.push(job);
        }
        std::thread::scope(|scope| {
            for (_, group) in groups {
                scope.spawn(move || {
                    for (shard, bucket) in group {
                        for route in bucket {
                            shard.announce(route);
                        }
                    }
                });
            }
        });
        total
    }

    /// Like [`Rib::load_parallel`], but runs `filter` over every route *on
    /// the worker threads* before announcing it; routes mapped to `None`
    /// are dropped. Returns the number of routes accepted.
    ///
    /// This is the filtered table-dump fast path: policy evaluation — the
    /// expensive per-route step — is fanned out together with the trie
    /// inserts instead of serializing in front of them. Equivalent to
    /// filtering the batch in order and announcing the survivors (asserted
    /// by test): the filter only sees one route at a time and routes for
    /// the same prefix keep their relative order within a shard bucket.
    pub fn load_parallel_filtered<F>(
        &mut self,
        routes: Vec<Route>,
        workers: usize,
        filter: F,
    ) -> usize
    where
        F: Fn(Route) -> Option<Route> + Sync,
    {
        let mut buckets: Vec<Vec<Route>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut short_routes = Vec::new();
        for route in routes {
            // The filter never rewrites the prefix (import policy only
            // touches attributes), so bucketing before filtering is safe.
            match self.shard_index(&route.prefix) {
                Some(i) => buckets[i].push(route),
                None => short_routes.push(route),
            }
        }
        let mut accepted = 0usize;
        if !short_routes.is_empty() {
            let short = Arc::make_mut(&mut self.short);
            for route in short_routes {
                if let Some(route) = filter(route) {
                    short.announce(route);
                    accepted += 1;
                }
            }
        }
        let workers = match workers {
            0 => std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
            n => n,
        };
        let mut jobs: Vec<(&mut RibShard, Vec<Route>)> = self
            .shards
            .iter_mut()
            .zip(buckets)
            .filter(|(_, bucket)| !bucket.is_empty())
            .map(|(shard, bucket)| (Arc::make_mut(shard), bucket))
            .collect();
        if jobs.is_empty() {
            return accepted;
        }
        if workers <= 1 || jobs.len() == 1 {
            for (shard, bucket) in jobs {
                for route in bucket {
                    if let Some(route) = filter(route) {
                        shard.announce(route);
                        accepted += 1;
                    }
                }
            }
            return accepted;
        }
        // Same greedy longest-processing-time balancing as the unfiltered
        // path; the filter cost is proportional to bucket volume, so route
        // counts remain the right load measure.
        let worker_count = workers.min(jobs.len());
        jobs.sort_by_key(|(_, bucket)| std::cmp::Reverse(bucket.len()));
        type WorkerGroup<'a> = (usize, Vec<(&'a mut RibShard, Vec<Route>)>);
        let mut groups: Vec<WorkerGroup<'_>> = (0..worker_count).map(|_| (0, Vec::new())).collect();
        for job in jobs {
            let lightest = groups
                .iter_mut()
                .min_by_key(|(load, _)| *load)
                .expect("worker_count >= 1");
            lightest.0 += job.1.len();
            lightest.1.push(job);
        }
        let filter = &filter;
        accepted
            + std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|(_, group)| {
                        scope.spawn(move || {
                            let mut kept = 0usize;
                            for (shard, bucket) in group {
                                for route in bucket {
                                    if let Some(route) = filter(route) {
                                        shard.announce(route);
                                        kept += 1;
                                    }
                                }
                            }
                            kept
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rib load worker panicked"))
                    .sum::<usize>()
            })
    }

    /// A fully independent copy: every shard's contents are duplicated,
    /// sharing nothing with `self`. This is what `Rib::clone` did before
    /// shards became copy-on-write; equivalence anchors and the checkpoint
    /// benchmarks use it as the reference cost.
    pub fn deep_clone(&self) -> Rib {
        Rib {
            shards: self
                .shards
                .iter()
                .map(|s| Arc::new(RibShard::clone(s)))
                .collect(),
            short: Arc::new(RibShard::clone(&self.short)),
            shard_bits: self.shard_bits,
        }
    }

    /// Copy-on-write accounting against another fork of the same table:
    /// `(shared, total)` shard units (including the short trie) still
    /// physically shared between the two. Tables with different shard
    /// layouts share nothing.
    pub fn cow_shard_sharing(&self, other: &Rib) -> (usize, usize) {
        let total = self.shards.len() + 1;
        if self.shards.len() != other.shards.len() {
            return (0, total);
        }
        let mut shared = usize::from(Arc::ptr_eq(&self.short, &other.short));
        shared += self
            .shards
            .iter()
            .zip(&other.shards)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count();
        (shared, total)
    }

    /// The best (Loc-RIB) route for a prefix, if any.
    pub fn best_route(&self, prefix: &Ipv4Prefix) -> Option<&Route> {
        let entry = self.home(prefix).table.get(prefix)?;
        let best = entry.best?;
        entry.candidates.get(&best)
    }

    /// All candidate routes for a prefix, in peer order.
    ///
    /// Returns a lazy iterator (empty for unknown prefixes) — the decision
    /// process and checkpoint serializer walk candidate sets on every
    /// operation, so no per-call `Vec` is built.
    pub fn candidates(&self, prefix: &Ipv4Prefix) -> impl Iterator<Item = &Route> {
        self.home(prefix)
            .table
            .get(prefix)
            .into_iter()
            .flat_map(|entry| entry.candidates.values())
    }

    /// The best route whose prefix covers the given prefix (most specific).
    /// This is the route an exploratory announcement for `prefix` would
    /// compete with, used by the origin-hijack checker.
    pub fn best_covering_route(&self, prefix: &Ipv4Prefix) -> Option<&Route> {
        // A covering prefix at least `shard_bits` long shares the top bits
        // with `prefix`, so it lives in the same shard; shorter covers live
        // in the short trie. The shard hit is always the more specific.
        let entry = match self.shard_index(prefix) {
            Some(i) => self.shards[i]
                .table
                .longest_covering(prefix)
                .or_else(|| self.short.table.longest_covering(prefix)),
            None => self.short.table.longest_covering(prefix),
        };
        let (_, entry) = entry?;
        let best = entry.best?;
        entry.candidates.get(&best)
    }

    /// Longest-prefix-match forwarding lookup for an IP address.
    pub fn lookup_ip(&self, ip: u32) -> Option<&Route> {
        let shard_hit = if self.shard_bits == 0 {
            self.shards[0].table.longest_match_ip(ip)
        } else {
            let i = (ip >> (32 - self.shard_bits as u32)) as usize;
            self.shards[i]
                .table
                .longest_match_ip(ip)
                .or_else(|| self.short.table.longest_match_ip(ip))
        };
        let (_, entry) = shard_hit?;
        let best = entry.best?;
        entry.candidates.get(&best)
    }

    /// Iterates over every `(prefix, entry)` pair across all shards in the
    /// canonical table order (the single-trie pre-order): shards are
    /// disjoint, already-sorted runs, so this is a two-way merge of the
    /// short trie against the shard chain.
    fn entries(&self) -> ShardedEntries<'_> {
        ShardedEntries {
            short: self.short.table.iter().peekable(),
            shards: self.shards.iter(),
            current: None,
        }
    }

    /// Iterates over all `(prefix, best route)` pairs (the Loc-RIB view),
    /// lazily and in canonical (single-trie depth-first) order — identical
    /// for every shard count.
    pub fn loc_rib(&self) -> impl Iterator<Item = (Ipv4Prefix, &Route)> {
        self.entries().filter_map(|(p, entry)| {
            let best = entry.best?;
            entry.candidates.get(&best).map(|r| (p, r))
        })
    }

    /// Rough memory footprint estimate in bytes, used by the checkpoint
    /// layer's page accounting.
    pub fn approx_size_bytes(&self) -> usize {
        // Each candidate route carries a prefix, attributes and an AS path;
        // 160 bytes is a conservative per-route estimate, plus trie nodes.
        self.route_count() * 160 + self.prefix_count() * 64
    }
}

/// Lazy merge of all shard tries (plus the short trie) in canonical
/// prefix order, returned by [`Rib::loc_rib`]'s implementation.
struct ShardedEntries<'a> {
    short: Peekable<TrieIter<'a, PrefixEntry>>,
    shards: std::slice::Iter<'a, Arc<RibShard>>,
    current: Option<Peekable<TrieIter<'a, PrefixEntry>>>,
}

impl<'a> Iterator for ShardedEntries<'a> {
    type Item = (Ipv4Prefix, &'a PrefixEntry);

    fn next(&mut self) -> Option<Self::Item> {
        // Advance to the next shard with entries remaining. Shard runs are
        // disjoint and ordered by shard index, so chaining them yields one
        // sorted run to merge against the short trie.
        let shard_head = loop {
            match self.current.as_mut() {
                Some(iter) => match iter.peek() {
                    Some(&(prefix, _)) => break Some(prefix),
                    None => self.current = None,
                },
                None => match self.shards.next() {
                    Some(shard) => self.current = Some(shard.table.iter().peekable()),
                    None => break None,
                },
            }
        };
        match (self.short.peek().map(|&(p, _)| p), shard_head) {
            (None, None) => None,
            (Some(_), None) => self.short.next(),
            (None, Some(_)) => self.current.as_mut().expect("head peeked").next(),
            (Some(s), Some(h)) => {
                // Never equal: short entries are strictly shorter than the
                // shard key, shard entries at least as long.
                if canonical_cmp(s, h) == Ordering::Less {
                    self.short.next()
                } else {
                    self.current.as_mut().expect("head peeked").next()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::AsPath;
    use std::net::Ipv4Addr;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().expect("valid prefix")
    }

    fn route(prefix: &str, peer: u32, path: &[u32]) -> Route {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence(path.iter().copied());
        attrs.next_hop = Ipv4Addr::new(10, 0, 0, peer as u8);
        Route::new(p(prefix), attrs, PeerId(peer), peer)
    }

    #[test]
    fn announce_installs_best_route() {
        let mut rib = Rib::new();
        let change = rib.announce(route("203.0.113.0/24", 1, &[100, 200]));
        assert!(matches!(change, RibChange::Updated(_)));
        assert_eq!(rib.prefix_count(), 1);
        assert_eq!(rib.route_count(), 1);
        assert_eq!(
            rib.best_route(&p("203.0.113.0/24")).map(|r| r.learned_from),
            Some(PeerId(1))
        );
    }

    #[test]
    fn better_route_replaces_best() {
        let mut rib = Rib::new();
        rib.announce(route("203.0.113.0/24", 1, &[100, 200, 300]));
        let change = rib.announce(route("203.0.113.0/24", 2, &[400]));
        match change {
            RibChange::Updated(r) => assert_eq!(r.learned_from, PeerId(2)),
            other => panic!("expected update, got {other:?}"),
        }
        assert_eq!(rib.route_count(), 2);
        // A worse route from peer 3 leaves the best unchanged.
        let change = rib.announce(route("203.0.113.0/24", 3, &[1, 2, 3, 4]));
        assert_eq!(change, RibChange::Unchanged);
    }

    #[test]
    fn withdraw_falls_back_to_next_best() {
        let mut rib = Rib::new();
        rib.announce(route("203.0.113.0/24", 1, &[100, 200, 300]));
        rib.announce(route("203.0.113.0/24", 2, &[400]));
        let change = rib.withdraw(&p("203.0.113.0/24"), PeerId(2));
        match change {
            RibChange::Updated(r) => assert_eq!(r.learned_from, PeerId(1)),
            other => panic!("expected fallback, got {other:?}"),
        }
        let change = rib.withdraw(&p("203.0.113.0/24"), PeerId(1));
        assert_eq!(change, RibChange::Removed(p("203.0.113.0/24")));
        assert_eq!(rib.prefix_count(), 0);
        assert_eq!(rib.route_count(), 0);
    }

    #[test]
    fn withdraw_of_unknown_route_is_noop() {
        let mut rib = Rib::new();
        assert_eq!(
            rib.withdraw(&p("10.0.0.0/8"), PeerId(1)),
            RibChange::Unchanged
        );
        rib.announce(route("10.0.0.0/8", 1, &[100]));
        assert_eq!(
            rib.withdraw(&p("10.0.0.0/8"), PeerId(9)),
            RibChange::Unchanged
        );
    }

    #[test]
    fn same_route_twice_is_unchanged_but_replaces() {
        let mut rib = Rib::new();
        let r = route("10.0.0.0/8", 1, &[100]);
        rib.announce(r.clone());
        assert_eq!(rib.announce(r), RibChange::Unchanged);
        assert_eq!(rib.route_count(), 1);
    }

    #[test]
    fn covering_route_lookup_for_hijack_check() {
        // The YouTube scenario: the /22 is installed; a bogus /24 is more
        // specific, and the checker must find the /22 it would override.
        let mut rib = Rib::new();
        rib.announce(route("208.65.152.0/22", 1, &[3356, 36561]));
        let covering = rib
            .best_covering_route(&p("208.65.153.0/24"))
            .expect("covered");
        assert_eq!(covering.prefix, p("208.65.152.0/22"));
        assert_eq!(covering.origin_as().map(|a| a.value()), Some(36561));
        assert!(rib.best_covering_route(&p("1.2.3.0/24")).is_none());
    }

    #[test]
    fn forwarding_lookup_uses_longest_match() {
        let mut rib = Rib::new();
        rib.announce(route("0.0.0.0/0", 1, &[100]));
        rib.announce(route("10.0.0.0/8", 2, &[200]));
        let r = rib
            .lookup_ip(u32::from_be_bytes([10, 1, 1, 1]))
            .expect("route");
        assert_eq!(r.learned_from, PeerId(2));
        let r = rib
            .lookup_ip(u32::from_be_bytes([8, 8, 8, 8]))
            .expect("route");
        assert_eq!(r.learned_from, PeerId(1));
    }

    #[test]
    fn loc_rib_lists_only_best_routes() {
        let mut rib = Rib::new();
        rib.announce(route("10.0.0.0/8", 1, &[100, 200]));
        rib.announce(route("10.0.0.0/8", 2, &[300]));
        rib.announce(route("192.168.0.0/16", 1, &[100]));
        assert_eq!(rib.loc_rib().count(), 2);
        let (_, ten) = rib
            .loc_rib()
            .find(|(q, _)| *q == p("10.0.0.0/8"))
            .expect("present");
        assert_eq!(ten.learned_from, PeerId(2));
        assert!(rib.approx_size_bytes() > 0);
    }

    #[test]
    fn candidates_iterates_per_peer_routes() {
        let mut rib = Rib::new();
        rib.announce(route("10.0.0.0/8", 1, &[100, 200]));
        rib.announce(route("10.0.0.0/8", 2, &[300]));
        let peers: Vec<PeerId> = rib
            .candidates(&p("10.0.0.0/8"))
            .map(|r| r.learned_from)
            .collect();
        assert_eq!(peers, vec![PeerId(1), PeerId(2)]);
        assert_eq!(rib.candidates(&p("1.2.3.0/24")).count(), 0);
    }

    #[test]
    fn reannouncement_from_best_peer_reports_attribute_changes() {
        let mut rib = Rib::new();
        rib.announce(route("10.0.0.0/8", 1, &[100, 200]));
        // Identical re-announcement: unchanged.
        assert_eq!(
            rib.announce(route("10.0.0.0/8", 1, &[100, 200])),
            RibChange::Unchanged
        );
        // Same (best) peer, different attributes: the Loc-RIB view changed
        // even though the winning peer did not.
        match rib.announce(route("10.0.0.0/8", 1, &[100, 200, 300])) {
            RibChange::Updated(r) => assert_eq!(r.attrs.as_path.length(), 3),
            other => panic!("expected update, got {other:?}"),
        }
    }

    /// A route mix that exercises every shard-count corner: short prefixes
    /// (/0../5), prefixes exactly at common shard boundaries, deep /32s,
    /// and adjacent address space in different shards.
    fn mixed_routes() -> Vec<Route> {
        vec![
            route("0.0.0.0/0", 1, &[100]),
            route("128.0.0.0/1", 2, &[200]),
            route("64.0.0.0/3", 1, &[100, 200]),
            route("10.0.0.0/8", 1, &[100]),
            route("10.0.0.0/8", 2, &[300, 400]),
            route("10.1.0.0/16", 3, &[500]),
            route("192.168.0.0/16", 1, &[100]),
            route("192.168.1.1/32", 2, &[200]),
            route("208.65.152.0/22", 1, &[3356, 36561]),
            route("208.65.153.0/24", 2, &[17557]),
            route("223.255.255.0/24", 3, &[999]),
        ]
    }

    #[test]
    fn every_shard_count_is_observationally_identical() {
        let reference = {
            let mut rib = Rib::with_shard_count(1);
            for r in mixed_routes() {
                rib.announce(r);
            }
            rib
        };
        let ref_loc: Vec<(Ipv4Prefix, Route)> =
            reference.loc_rib().map(|(p, r)| (p, r.clone())).collect();
        for count in [2usize, 4, 16, 64, 256] {
            let mut rib = Rib::with_shard_count(count);
            assert_eq!(rib.shard_count(), count);
            for r in mixed_routes() {
                rib.announce(r);
            }
            assert_eq!(rib.prefix_count(), reference.prefix_count(), "{count}");
            assert_eq!(rib.route_count(), reference.route_count(), "{count}");
            // The merged iteration reproduces the single-trie order exactly.
            let loc: Vec<(Ipv4Prefix, Route)> =
                rib.loc_rib().map(|(p, r)| (p, r.clone())).collect();
            assert_eq!(loc, ref_loc, "loc_rib order diverged at {count} shards");
            // Point queries agree, including covers resolved from the
            // short trie.
            for ip in [0x0a010203u32, 0xc0a80101, 0xd0419901, 0x55555555] {
                assert_eq!(
                    rib.lookup_ip(ip).map(|r| r.prefix),
                    reference.lookup_ip(ip).map(|r| r.prefix),
                    "lookup_ip({ip:#x}) at {count} shards"
                );
            }
            assert_eq!(
                rib.best_covering_route(&p("208.65.153.128/25"))
                    .map(|r| r.prefix),
                Some(p("208.65.153.0/24"))
            );
            assert_eq!(
                rib.best_covering_route(&p("55.0.0.0/24")).map(|r| r.prefix),
                Some(p("0.0.0.0/0")),
                "short-trie cover at {count} shards"
            );
        }
    }

    #[test]
    fn shard_counts_round_up_and_clamp() {
        assert_eq!(Rib::with_shard_count(0).shard_count(), 1);
        assert_eq!(Rib::with_shard_count(3).shard_count(), 4);
        assert_eq!(Rib::with_shard_count(1024).shard_count(), 256);
        let default = Rib::new().shard_count();
        assert!(default.is_power_of_two() && default <= 64);
    }

    #[test]
    fn clone_is_a_cow_fork_and_deep_clone_shares_nothing() {
        let mut live = Rib::with_shard_count(8);
        for r in mixed_routes() {
            live.announce(r);
        }
        let fork = live.clone();
        let (shared, total) = fork.cow_shard_sharing(&live);
        assert_eq!(total, 9, "8 shards plus the short trie");
        assert_eq!(shared, total, "an untouched fork shares every unit");

        // Writing one prefix copies exactly the affected shard.
        live.announce(route("203.0.113.0/24", 1, &[100]));
        let (shared_after, _) = fork.cow_shard_sharing(&live);
        assert_eq!(shared_after, total - 1, "one shard copied on write");
        // The fork is unaffected by the live write.
        assert!(fork.best_route(&p("203.0.113.0/24")).is_none());
        assert!(live.best_route(&p("203.0.113.0/24")).is_some());

        // A no-op withdrawal must not break sharing.
        let mut fork2 = live.clone();
        assert_eq!(
            fork2.withdraw(&p("1.2.3.0/24"), PeerId(9)),
            RibChange::Unchanged
        );
        assert_eq!(
            fork2.withdraw(&p("10.0.0.0/8"), PeerId(9)),
            RibChange::Unchanged,
            "unknown peer on a known prefix is also a no-op"
        );
        let (shared2, total2) = fork2.cow_shard_sharing(&live);
        assert_eq!(shared2, total2, "no-op withdrawals copy nothing");

        // deep_clone duplicates everything up front.
        let deep = live.deep_clone();
        let (shared_deep, _) = deep.cow_shard_sharing(&live);
        assert_eq!(shared_deep, 0);
        assert_eq!(deep.prefix_count(), live.prefix_count());
        let a: Vec<_> = deep.loc_rib().map(|(p, _)| p).collect();
        let b: Vec<_> = live.loc_rib().map(|(p, _)| p).collect();
        assert_eq!(a, b);

        // Different layouts never report sharing.
        let other = Rib::with_shard_count(2);
        assert_eq!(live.cow_shard_sharing(&other).0, 0);
    }

    #[test]
    fn load_parallel_equals_sequential_announce() {
        let routes: Vec<Route> = (0..2_000u32)
            .map(|i| {
                let prefix = Ipv4Prefix::new(((i % 200 + 1) << 24) | (i << 8), 24).expect("valid");
                Route::new(
                    prefix,
                    {
                        let mut attrs = RouteAttrs::default();
                        attrs.as_path = AsPath::from_sequence([1299, 100_000 + i]);
                        attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
                        attrs
                    },
                    PeerId(2),
                    2,
                )
            })
            .chain(std::iter::once(route("0.0.0.0/0", 1, &[100])))
            .collect();

        let mut sequential = Rib::with_shard_count(16);
        for r in routes.clone() {
            sequential.announce(r);
        }
        for workers in [0usize, 1, 4] {
            let mut parallel = Rib::with_shard_count(16);
            assert_eq!(
                parallel.load_parallel(routes.clone(), workers),
                routes.len()
            );
            assert_eq!(parallel.prefix_count(), sequential.prefix_count());
            assert_eq!(parallel.route_count(), sequential.route_count());
            let a: Vec<(Ipv4Prefix, Route)> =
                parallel.loc_rib().map(|(p, r)| (p, r.clone())).collect();
            let b: Vec<(Ipv4Prefix, Route)> =
                sequential.loc_rib().map(|(p, r)| (p, r.clone())).collect();
            assert_eq!(a, b, "workers={workers}");
        }
        // An empty load is a no-op.
        let mut empty = Rib::new();
        assert_eq!(empty.load_parallel(Vec::new(), 0), 0);
        assert_eq!(empty.prefix_count(), 0);
    }

    #[test]
    fn load_parallel_filtered_equals_sequential_filter_then_announce() {
        // Reject every odd source index and rewrite MED on the survivors,
        // so the test catches both dropped routes and lost modifications.
        let filter = |route: Route| -> Option<Route> {
            let last = route.attrs.as_path.flatten().last()?.value();
            if last % 2 == 1 {
                return None;
            }
            let mut route = route;
            route.attrs.med = Some(last);
            Some(route)
        };
        let routes: Vec<Route> = (0..2_000u32)
            .map(|i| {
                let prefix = Ipv4Prefix::new(((i % 200 + 1) << 24) | (i << 8), 24).expect("valid");
                Route::new(
                    prefix,
                    {
                        let mut attrs = RouteAttrs::default();
                        attrs.as_path = AsPath::from_sequence([1299, 100_000 + i]);
                        attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
                        attrs
                    },
                    PeerId(2),
                    2,
                )
            })
            .chain(std::iter::once(route("0.0.0.0/0", 1, &[100])))
            .collect();

        let mut sequential = Rib::with_shard_count(16);
        let mut kept = 0usize;
        for r in routes.clone() {
            if let Some(r) = filter(r) {
                sequential.announce(r);
                kept += 1;
            }
        }
        assert!(kept > 0 && kept < routes.len(), "filter must bite");
        for workers in [0usize, 1, 4] {
            let mut parallel = Rib::with_shard_count(16);
            assert_eq!(
                parallel.load_parallel_filtered(routes.clone(), workers, filter),
                kept,
                "workers={workers}"
            );
            let a: Vec<(Ipv4Prefix, Route)> =
                parallel.loc_rib().map(|(p, r)| (p, r.clone())).collect();
            let b: Vec<(Ipv4Prefix, Route)> =
                sequential.loc_rib().map(|(p, r)| (p, r.clone())).collect();
            assert_eq!(a, b, "workers={workers}");
        }
    }
}
