//! Routing information bases: Adj-RIB-In, Loc-RIB and Adj-RIB-Out.
//!
//! The RIB is the node state that DiCE checkpoints and that the hijack
//! checker inspects ("a route already in the routing table prior to
//! starting exploration", paper §4.2).

use std::collections::BTreeMap;

use dice_bgp::prefix::Ipv4Prefix;
use dice_bgp::route::{PeerId, Route};

use crate::decision::best_of;
use crate::trie::PrefixTrie;

/// The effect of applying an announcement or withdrawal to the Loc-RIB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RibChange {
    /// The best route for the prefix changed to the contained route.
    Updated(Route),
    /// The prefix no longer has any route.
    Removed(Ipv4Prefix),
    /// The best route did not change.
    Unchanged,
}

impl RibChange {
    /// Returns true if the Loc-RIB was modified.
    pub fn is_change(&self) -> bool {
        !matches!(self, RibChange::Unchanged)
    }
}

/// The per-prefix candidate set plus the selected best route.
#[derive(Debug, Clone, Default)]
struct PrefixEntry {
    /// Candidate routes, keyed by the peer they were learned from.
    candidates: BTreeMap<PeerId, Route>,
    /// Index of the best route's peer, if any.
    best: Option<PeerId>,
}

/// The router's routing table.
///
/// Internally one trie maps each prefix to its candidate set (the
/// Adj-RIBs-In merged per prefix) and the selected best route (the
/// Loc-RIB view).
#[derive(Debug, Clone, Default)]
pub struct Rib {
    table: PrefixTrie<PrefixEntry>,
    /// Number of prefixes with at least one candidate.
    prefixes: usize,
    /// Total number of candidate routes.
    candidates: usize,
}

impl Rib {
    /// Creates an empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of prefixes with at least one route.
    pub fn prefix_count(&self) -> usize {
        self.prefixes
    }

    /// Total number of candidate routes across all peers.
    pub fn route_count(&self) -> usize {
        self.candidates
    }

    /// Inserts or replaces the route learned from `route.learned_from` for
    /// `route.prefix`, re-runs the decision process and reports the change.
    ///
    /// This is the hot path of UPDATE processing (and of every concolic
    /// re-execution), so it allocates nothing beyond trie growth: the
    /// previous best is snapshotted only when the announce overwrites it in
    /// place, and reselection scans the candidate map without materializing
    /// it.
    pub fn announce(&mut self, route: Route) -> RibChange {
        let prefix = route.prefix;
        let peer = route.learned_from;
        if self.table.get(&prefix).is_none() {
            self.table.insert(prefix, PrefixEntry::default());
            self.prefixes += 1;
        }
        let entry = self.table.get_mut(&prefix).expect("entry just ensured");
        let old_best_peer = entry.best;
        // The only state the insert below can destroy is the best route
        // itself (a re-announcement from the best peer); everything else
        // survives in the map and needs no defensive clone.
        let overwritten_best = match old_best_peer {
            Some(bp) if bp == peer => entry.candidates.get(&bp).cloned(),
            _ => None,
        };
        if entry.candidates.insert(peer, route).is_none() {
            self.candidates += 1;
        }
        Self::reselect(entry);
        match (old_best_peer, entry.best) {
            (None, Some(new)) => RibChange::Updated(entry.candidates[&new].clone()),
            (Some(old), Some(new)) if old != new => {
                RibChange::Updated(entry.candidates[&new].clone())
            }
            (Some(old), Some(_)) if old == peer => {
                // Same best peer; did the re-announcement change the route?
                let current = &entry.candidates[&old];
                if overwritten_best.as_ref() == Some(current) {
                    RibChange::Unchanged
                } else {
                    RibChange::Updated(current.clone())
                }
            }
            // Same best peer, untouched by this announce.
            (Some(_), Some(_)) => RibChange::Unchanged,
            // An announce never empties a candidate set.
            (_, None) => RibChange::Unchanged,
        }
    }

    /// Removes the route learned from `peer` for `prefix`, if any.
    pub fn withdraw(&mut self, prefix: &Ipv4Prefix, peer: PeerId) -> RibChange {
        let Some(entry) = self.table.get_mut(prefix) else {
            return RibChange::Unchanged;
        };
        let old_best_peer = entry.best;
        if entry.candidates.remove(&peer).is_none() {
            return RibChange::Unchanged;
        }
        self.candidates -= 1;
        if entry.candidates.is_empty() {
            self.table.remove(prefix);
            self.prefixes -= 1;
            return match old_best_peer {
                Some(_) => RibChange::Removed(*prefix),
                None => RibChange::Unchanged,
            };
        }
        if old_best_peer != Some(peer) {
            // Removing a non-best candidate cannot change the winner.
            return RibChange::Unchanged;
        }
        Self::reselect(entry);
        match entry.best {
            Some(new) => RibChange::Updated(entry.candidates[&new].clone()),
            None => RibChange::Removed(*prefix),
        }
    }

    fn reselect(entry: &mut PrefixEntry) {
        entry.best = best_of(entry.candidates.values()).map(|r| r.learned_from);
    }

    /// The best (Loc-RIB) route for a prefix, if any.
    pub fn best_route(&self, prefix: &Ipv4Prefix) -> Option<&Route> {
        let entry = self.table.get(prefix)?;
        let best = entry.best?;
        entry.candidates.get(&best)
    }

    /// All candidate routes for a prefix, in peer order.
    ///
    /// Returns a lazy iterator (empty for unknown prefixes) — the decision
    /// process and checkpoint serializer walk candidate sets on every
    /// operation, so no per-call `Vec` is built.
    pub fn candidates(&self, prefix: &Ipv4Prefix) -> impl Iterator<Item = &Route> {
        self.table
            .get(prefix)
            .into_iter()
            .flat_map(|entry| entry.candidates.values())
    }

    /// The best route whose prefix covers the given prefix (most specific).
    /// This is the route an exploratory announcement for `prefix` would
    /// compete with, used by the origin-hijack checker.
    pub fn best_covering_route(&self, prefix: &Ipv4Prefix) -> Option<&Route> {
        let (_, entry) = self.table.longest_covering(prefix)?;
        let best = entry.best?;
        entry.candidates.get(&best)
    }

    /// Longest-prefix-match forwarding lookup for an IP address.
    pub fn lookup_ip(&self, ip: u32) -> Option<&Route> {
        let (_, entry) = self.table.longest_match_ip(ip)?;
        let best = entry.best?;
        entry.candidates.get(&best)
    }

    /// Iterates over all `(prefix, best route)` pairs (the Loc-RIB view),
    /// lazily and in trie (depth-first) order.
    pub fn loc_rib(&self) -> impl Iterator<Item = (Ipv4Prefix, &Route)> {
        self.table.iter().filter_map(|(p, entry)| {
            let best = entry.best?;
            entry.candidates.get(&best).map(|r| (p, r))
        })
    }

    /// Rough memory footprint estimate in bytes, used by the checkpoint
    /// layer's page accounting.
    pub fn approx_size_bytes(&self) -> usize {
        // Each candidate route carries a prefix, attributes and an AS path;
        // 160 bytes is a conservative per-route estimate, plus trie nodes.
        self.candidates * 160 + self.prefixes * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::AsPath;
    use std::net::Ipv4Addr;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().expect("valid prefix")
    }

    fn route(prefix: &str, peer: u32, path: &[u32]) -> Route {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence(path.iter().copied());
        attrs.next_hop = Ipv4Addr::new(10, 0, 0, peer as u8);
        Route::new(p(prefix), attrs, PeerId(peer), peer)
    }

    #[test]
    fn announce_installs_best_route() {
        let mut rib = Rib::new();
        let change = rib.announce(route("203.0.113.0/24", 1, &[100, 200]));
        assert!(matches!(change, RibChange::Updated(_)));
        assert_eq!(rib.prefix_count(), 1);
        assert_eq!(rib.route_count(), 1);
        assert_eq!(
            rib.best_route(&p("203.0.113.0/24")).map(|r| r.learned_from),
            Some(PeerId(1))
        );
    }

    #[test]
    fn better_route_replaces_best() {
        let mut rib = Rib::new();
        rib.announce(route("203.0.113.0/24", 1, &[100, 200, 300]));
        let change = rib.announce(route("203.0.113.0/24", 2, &[400]));
        match change {
            RibChange::Updated(r) => assert_eq!(r.learned_from, PeerId(2)),
            other => panic!("expected update, got {other:?}"),
        }
        assert_eq!(rib.route_count(), 2);
        // A worse route from peer 3 leaves the best unchanged.
        let change = rib.announce(route("203.0.113.0/24", 3, &[1, 2, 3, 4]));
        assert_eq!(change, RibChange::Unchanged);
    }

    #[test]
    fn withdraw_falls_back_to_next_best() {
        let mut rib = Rib::new();
        rib.announce(route("203.0.113.0/24", 1, &[100, 200, 300]));
        rib.announce(route("203.0.113.0/24", 2, &[400]));
        let change = rib.withdraw(&p("203.0.113.0/24"), PeerId(2));
        match change {
            RibChange::Updated(r) => assert_eq!(r.learned_from, PeerId(1)),
            other => panic!("expected fallback, got {other:?}"),
        }
        let change = rib.withdraw(&p("203.0.113.0/24"), PeerId(1));
        assert_eq!(change, RibChange::Removed(p("203.0.113.0/24")));
        assert_eq!(rib.prefix_count(), 0);
        assert_eq!(rib.route_count(), 0);
    }

    #[test]
    fn withdraw_of_unknown_route_is_noop() {
        let mut rib = Rib::new();
        assert_eq!(
            rib.withdraw(&p("10.0.0.0/8"), PeerId(1)),
            RibChange::Unchanged
        );
        rib.announce(route("10.0.0.0/8", 1, &[100]));
        assert_eq!(
            rib.withdraw(&p("10.0.0.0/8"), PeerId(9)),
            RibChange::Unchanged
        );
    }

    #[test]
    fn same_route_twice_is_unchanged_but_replaces() {
        let mut rib = Rib::new();
        let r = route("10.0.0.0/8", 1, &[100]);
        rib.announce(r.clone());
        assert_eq!(rib.announce(r), RibChange::Unchanged);
        assert_eq!(rib.route_count(), 1);
    }

    #[test]
    fn covering_route_lookup_for_hijack_check() {
        // The YouTube scenario: the /22 is installed; a bogus /24 is more
        // specific, and the checker must find the /22 it would override.
        let mut rib = Rib::new();
        rib.announce(route("208.65.152.0/22", 1, &[3356, 36561]));
        let covering = rib
            .best_covering_route(&p("208.65.153.0/24"))
            .expect("covered");
        assert_eq!(covering.prefix, p("208.65.152.0/22"));
        assert_eq!(covering.origin_as().map(|a| a.value()), Some(36561));
        assert!(rib.best_covering_route(&p("1.2.3.0/24")).is_none());
    }

    #[test]
    fn forwarding_lookup_uses_longest_match() {
        let mut rib = Rib::new();
        rib.announce(route("0.0.0.0/0", 1, &[100]));
        rib.announce(route("10.0.0.0/8", 2, &[200]));
        let r = rib
            .lookup_ip(u32::from_be_bytes([10, 1, 1, 1]))
            .expect("route");
        assert_eq!(r.learned_from, PeerId(2));
        let r = rib
            .lookup_ip(u32::from_be_bytes([8, 8, 8, 8]))
            .expect("route");
        assert_eq!(r.learned_from, PeerId(1));
    }

    #[test]
    fn loc_rib_lists_only_best_routes() {
        let mut rib = Rib::new();
        rib.announce(route("10.0.0.0/8", 1, &[100, 200]));
        rib.announce(route("10.0.0.0/8", 2, &[300]));
        rib.announce(route("192.168.0.0/16", 1, &[100]));
        assert_eq!(rib.loc_rib().count(), 2);
        let (_, ten) = rib
            .loc_rib()
            .find(|(q, _)| *q == p("10.0.0.0/8"))
            .expect("present");
        assert_eq!(ten.learned_from, PeerId(2));
        assert!(rib.approx_size_bytes() > 0);
    }

    #[test]
    fn candidates_iterates_per_peer_routes() {
        let mut rib = Rib::new();
        rib.announce(route("10.0.0.0/8", 1, &[100, 200]));
        rib.announce(route("10.0.0.0/8", 2, &[300]));
        let peers: Vec<PeerId> = rib
            .candidates(&p("10.0.0.0/8"))
            .map(|r| r.learned_from)
            .collect();
        assert_eq!(peers, vec![PeerId(1), PeerId(2)]);
        assert_eq!(rib.candidates(&p("1.2.3.0/24")).count(), 0);
    }

    #[test]
    fn reannouncement_from_best_peer_reports_attribute_changes() {
        let mut rib = Rib::new();
        rib.announce(route("10.0.0.0/8", 1, &[100, 200]));
        // Identical re-announcement: unchanged.
        assert_eq!(
            rib.announce(route("10.0.0.0/8", 1, &[100, 200])),
            RibChange::Unchanged
        );
        // Same (best) peer, different attributes: the Loc-RIB view changed
        // even though the winning peer did not.
        match rib.announce(route("10.0.0.0/8", 1, &[100, 200, 300])) {
            RibChange::Updated(r) => assert_eq!(r.attrs.as_path.length(), 3),
            other => panic!("expected update, got {other:?}"),
        }
    }
}
