//! Router configuration: identity, neighbors, filters and static routes.
//!
//! The configuration file format mirrors BIRD's structure at a much smaller
//! scale:
//!
//! ```text
//! router id 10.0.0.2;
//! local as 3491;
//!
//! filter customer_in {
//!     if net ~ [ 208.65.152.0/22{22,24} ] then accept;
//!     reject;
//! }
//!
//! neighbor 10.0.1.1 as 17557 {
//!     import filter customer_in;
//!     export filter announce_all;
//! }
//!
//! static 203.0.113.0/24 via 10.0.0.1;
//! ```

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use dice_bgp::prefix::Ipv4Prefix;

use crate::policy::{FilterDef, ParseError, Parser, Token};

/// Configuration of one BGP neighbor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborConfig {
    /// The neighbor's address.
    pub address: Ipv4Addr,
    /// The neighbor's AS number.
    pub remote_as: u32,
    /// Name of the import filter, if any (`None` accepts everything).
    pub import_filter: Option<String>,
    /// Name of the export filter, if any (`None` exports everything).
    pub export_filter: Option<String>,
}

/// A statically configured (locally originated) route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticRoute {
    /// The originated prefix.
    pub prefix: Ipv4Prefix,
    /// Next hop advertised for the prefix.
    pub next_hop: Ipv4Addr,
}

/// Complete router configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    /// The router identifier.
    pub router_id: Ipv4Addr,
    /// The local AS number.
    pub local_as: u32,
    /// Neighbors in declaration order.
    pub neighbors: Vec<NeighborConfig>,
    /// Named filters.
    pub filters: BTreeMap<String, FilterDef>,
    /// Locally originated routes.
    pub static_routes: Vec<StaticRoute>,
}

impl RouterConfig {
    /// Creates a minimal configuration with no neighbors or filters.
    pub fn new(router_id: Ipv4Addr, local_as: u32) -> Self {
        RouterConfig {
            router_id,
            local_as,
            neighbors: Vec::new(),
            filters: BTreeMap::new(),
            static_routes: Vec::new(),
        }
    }

    /// Adds a neighbor; builder style.
    pub fn with_neighbor(mut self, n: NeighborConfig) -> Self {
        self.neighbors.push(n);
        self
    }

    /// Adds a filter; builder style.
    pub fn with_filter(mut self, f: FilterDef) -> Self {
        self.filters.insert(f.name.clone(), f);
        self
    }

    /// Adds a static route; builder style.
    pub fn with_static_route(mut self, prefix: Ipv4Prefix, next_hop: Ipv4Addr) -> Self {
        self.static_routes.push(StaticRoute { prefix, next_hop });
        self
    }

    /// Looks up a filter by name.
    pub fn filter(&self, name: &str) -> Option<&FilterDef> {
        self.filters.get(name)
    }

    /// Parses a configuration file.
    pub fn parse(input: &str) -> Result<Self, ParseError> {
        let mut parser = Parser::new(input)?;
        let mut router_id = None;
        let mut local_as = None;
        let mut config = RouterConfig::new(Ipv4Addr::UNSPECIFIED, 0);

        while !parser.at_end() {
            if parser.eat_keyword("router") {
                parser.expect_keyword("id")?;
                let addr = parser.expect_ip()?;
                parser.expect(&Token::Semi)?;
                router_id = Some(Ipv4Addr::from(addr));
            } else if parser.eat_keyword("local") {
                parser.expect_keyword("as")?;
                let asn = parser.expect_number()?;
                parser.expect(&Token::Semi)?;
                local_as = Some(asn as u32);
            } else if matches!(parser.peek(), Some(Token::Ident(s)) if s == "filter") {
                let filter = parser.parse_filter()?;
                config.filters.insert(filter.name.clone(), filter);
            } else if parser.eat_keyword("neighbor") {
                let address = Ipv4Addr::from(parser.expect_ip()?);
                parser.expect_keyword("as")?;
                let remote_as = parser.expect_number()? as u32;
                parser.expect(&Token::LBrace)?;
                let mut import_filter = None;
                let mut export_filter = None;
                loop {
                    if parser.eat(&Token::RBrace) {
                        break;
                    }
                    if parser.eat_keyword("import") {
                        parser.expect_keyword("filter")?;
                        import_filter = Some(parser.expect_ident()?);
                        parser.expect(&Token::Semi)?;
                    } else if parser.eat_keyword("export") {
                        parser.expect_keyword("filter")?;
                        export_filter = Some(parser.expect_ident()?);
                        parser.expect(&Token::Semi)?;
                    } else {
                        return Err(
                            parser.error("expected `import`, `export` or `}` in neighbor block")
                        );
                    }
                }
                config.neighbors.push(NeighborConfig {
                    address,
                    remote_as,
                    import_filter,
                    export_filter,
                });
            } else if parser.eat_keyword("static") {
                let prefix = parser.expect_prefix()?;
                parser.expect_keyword("via")?;
                let next_hop = Ipv4Addr::from(parser.expect_ip()?);
                parser.expect(&Token::Semi)?;
                config.static_routes.push(StaticRoute { prefix, next_hop });
            } else {
                return Err(parser.error("expected top-level declaration"));
            }
        }

        config.router_id = router_id.ok_or_else(|| ParseError {
            line: 0,
            message: "missing `router id` declaration".into(),
        })?;
        config.local_as = local_as.ok_or_else(|| ParseError {
            line: 0,
            message: "missing `local as` declaration".into(),
        })?;
        config.validate()?;
        Ok(config)
    }

    /// Checks referential integrity: every referenced filter must exist.
    pub fn validate(&self) -> Result<(), ParseError> {
        for n in &self.neighbors {
            for f in [&n.import_filter, &n.export_filter].into_iter().flatten() {
                if !self.filters.contains_key(f) {
                    return Err(ParseError {
                        line: 0,
                        message: format!("neighbor {} references unknown filter `{f}`", n.address),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROVIDER_CONFIG: &str = r#"
        # Provider AS (PCCW analog) with a customer and a transit peer.
        router id 10.0.0.2;
        local as 3491;

        filter customer_in {
            if net ~ [ 208.65.152.0/22{22,24} ] then {
                local_pref = 200;
                accept;
            }
            reject;
        }

        filter announce_all {
            accept;
        }

        neighbor 10.0.1.1 as 17557 {
            import filter customer_in;
            export filter announce_all;
        }

        neighbor 10.0.2.1 as 1299 {
            import filter announce_all;
            export filter announce_all;
        }

        static 203.0.113.0/24 via 10.0.0.2;
    "#;

    #[test]
    fn parses_full_configuration() {
        let cfg = RouterConfig::parse(PROVIDER_CONFIG).expect("parses");
        assert_eq!(cfg.router_id, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(cfg.local_as, 3491);
        assert_eq!(cfg.neighbors.len(), 2);
        assert_eq!(cfg.neighbors[0].remote_as, 17557);
        assert_eq!(
            cfg.neighbors[0].import_filter.as_deref(),
            Some("customer_in")
        );
        assert_eq!(cfg.filters.len(), 2);
        assert_eq!(cfg.static_routes.len(), 1);
        assert!(cfg.filter("customer_in").is_some());
        assert!(cfg.filter("missing").is_none());
    }

    #[test]
    fn missing_identity_is_rejected() {
        assert!(RouterConfig::parse("local as 1;").is_err());
        assert!(RouterConfig::parse("router id 10.0.0.1;").is_err());
        let err = RouterConfig::parse("bogus;").expect_err("fails");
        assert!(err.to_string().contains("top-level"));
    }

    #[test]
    fn unknown_filter_reference_is_rejected() {
        let src = r#"
            router id 10.0.0.1;
            local as 65001;
            neighbor 10.0.0.2 as 65002 {
                import filter nonexistent;
            }
        "#;
        let err = RouterConfig::parse(src).expect_err("fails");
        assert!(err.to_string().contains("unknown filter"));
    }

    #[test]
    fn builder_api_matches_parsed_form() {
        let built = RouterConfig::new(Ipv4Addr::new(10, 0, 0, 2), 3491)
            .with_filter(FilterDef::accept_all("announce_all"))
            .with_neighbor(NeighborConfig {
                address: Ipv4Addr::new(10, 0, 2, 1),
                remote_as: 1299,
                import_filter: Some("announce_all".into()),
                export_filter: Some("announce_all".into()),
            })
            .with_static_route(
                "203.0.113.0/24".parse().expect("valid"),
                Ipv4Addr::new(10, 0, 0, 2),
            );
        assert!(built.validate().is_ok());
        assert_eq!(built.neighbors.len(), 1);
        assert_eq!(built.static_routes.len(), 1);
    }

    #[test]
    fn neighbor_without_filters_accepts_everything() {
        let src = r#"
            router id 10.0.0.1;
            local as 65001;
            neighbor 10.0.0.2 as 65002 { }
        "#;
        let cfg = RouterConfig::parse(src).expect("parses");
        assert_eq!(cfg.neighbors[0].import_filter, None);
        assert_eq!(cfg.neighbors[0].export_filter, None);
    }
}
