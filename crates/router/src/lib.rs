//! # dice-router
//!
//! A BIRD-like BGP routing daemon library: routing information bases backed
//! by a radix trie, the RFC 4271 decision process, a policy/filter language
//! with a concolic-aware interpreter, and the router message handler that
//! DiCE checkpoints and explores.
//!
//! The paper integrates DiCE with BIRD 1.1.7; this crate is the substituted
//! substrate (see `DESIGN.md`). The pieces DiCE relies on are:
//!
//! * [`BgpRouter::handle_update`] — the identified message handler whose
//!   code paths exploration exercises;
//! * [`policy::eval_filter`] — the configuration interpreter, which records
//!   constraints when evaluated over symbolic route fields, so exploration
//!   covers configuration behaviour;
//! * [`Rib`] — the node state captured by checkpoints and inspected by the
//!   origin-hijack checker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod decision;
pub mod peer;
pub mod policy;
pub mod rib;
pub mod router;
pub mod trie;

pub use config::{NeighborConfig, RouterConfig, StaticRoute};
pub use decision::{compare, is_better, select_best, DecisionReason};
pub use peer::{Peer, PeerStats};
pub use policy::{FilterDef, FilterOutcome, FilterVerdict, RouteView};
pub use rib::{Rib, RibChange};
pub use router::{BgpRouter, Outgoing, RouterStats};
pub use trie::PrefixTrie;
