//! The BGP routing daemon: message handling, import/export policy and
//! route propagation. This is the BIRD analog that DiCE instruments.

use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

use dice_bgp::attributes::{Community, RouteAttrs};
use dice_bgp::fsm::SessionEvent;
use dice_bgp::message::{BgpMessage, KeepaliveMessage, OpenMessage, UpdateMessage};
use dice_bgp::prefix::Ipv4Prefix;
use dice_bgp::route::{PeerId, Route};
use dice_bgp::Asn;

use dice_symexec::ExecCtx;

use crate::config::RouterConfig;
use crate::peer::Peer;
use crate::policy::{eval_filter, FilterOutcome, RouteView};
use crate::rib::{Rib, RibChange};

/// Router-wide counters; `updates_processed` is the metric the paper's
/// CPU-overhead experiment reports (updates handled per second).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// UPDATE messages processed.
    pub updates_processed: u64,
    /// Prefix announcements processed (one UPDATE may carry several).
    pub prefixes_announced: u64,
    /// Prefix withdrawals processed.
    pub prefixes_withdrawn: u64,
    /// Routes accepted by import policy.
    pub routes_accepted: u64,
    /// Routes rejected by import policy.
    pub routes_rejected: u64,
    /// Messages queued for transmission to peers.
    pub messages_sent: u64,
}

/// A message addressed to a specific peer.
pub type Outgoing = (PeerId, BgpMessage);

/// What tearing a session down produced: the flushed-route count and the
/// withdrawal UPDATEs to propagate to the remaining established peers.
#[derive(Debug, Default)]
pub struct SessionResetOutcome {
    /// Prefixes whose candidate learned from the reset peer was withdrawn
    /// from the RIB.
    pub withdrawn_routes: usize,
    /// Withdrawals for best-route changes, addressed to the other peers.
    pub outgoing: Vec<Outgoing>,
}

/// The BGP router.
///
/// # Examples
///
/// ```
/// use dice_router::{BgpRouter, RouterConfig, NeighborConfig};
/// use dice_router::policy::FilterDef;
/// use std::net::Ipv4Addr;
///
/// let config = RouterConfig::new(Ipv4Addr::new(10, 0, 0, 1), 65001)
///     .with_filter(FilterDef::accept_all("all"))
///     .with_neighbor(NeighborConfig {
///         address: Ipv4Addr::new(10, 0, 0, 2),
///         remote_as: 65002,
///         import_filter: Some("all".into()),
///         export_filter: Some("all".into()),
///     });
/// let mut router = BgpRouter::new(config);
/// router.start();
/// assert!(router.peers().all(|p| p.is_established()));
/// ```
#[derive(Debug, Clone)]
pub struct BgpRouter {
    config: RouterConfig,
    peers: BTreeMap<PeerId, Peer>,
    by_address: HashMap<Ipv4Addr, PeerId>,
    rib: Rib,
    stats: RouterStats,
}

impl BgpRouter {
    /// Creates a router from its configuration. Peers start in the `Idle`
    /// state; call [`BgpRouter::start`] (or feed session events) to bring
    /// sessions up. Static routes are installed immediately.
    pub fn new(config: RouterConfig) -> Self {
        let mut peers = BTreeMap::new();
        let mut by_address = HashMap::new();
        for (i, n) in config.neighbors.iter().enumerate() {
            let id = PeerId(i as u32 + 1);
            peers.insert(id, Peer::from_config(id, n));
            by_address.insert(n.address, id);
        }
        let mut router = BgpRouter {
            config,
            peers,
            by_address,
            rib: Rib::new(),
            stats: RouterStats::default(),
        };
        for sr in router.config.static_routes.clone() {
            let attrs = RouteAttrs {
                next_hop: sr.next_hop,
                ..Default::default()
            };
            router.rib.announce(Route::local(sr.prefix, attrs));
        }
        router
    }

    /// The router identifier.
    pub fn router_id(&self) -> Ipv4Addr {
        self.config.router_id
    }

    /// The local AS number.
    pub fn local_as(&self) -> u32 {
        self.config.local_as
    }

    /// The configuration the router was built from.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Read access to the routing table.
    pub fn rib(&self) -> &Rib {
        &self.rib
    }

    /// A fully independent copy of the router, duplicating the routing
    /// table up front instead of sharing its shards copy-on-write.
    ///
    /// `BgpRouter::clone` is the checkpoint/fork operation: the RIB's
    /// shards are shared until either side writes ([`Rib`] module docs).
    /// `deep_clone` restores the pre-copy-on-write cost model; the
    /// exploration equivalence anchors and the checkpoint benchmarks use
    /// it as the reference path.
    pub fn deep_clone(&self) -> BgpRouter {
        let mut copy = self.clone();
        copy.rib = self.rib.deep_clone();
        copy
    }

    /// Bulk-loads routes straight into the RIB, fanned out across
    /// `workers` threads over disjoint shards ([`Rib::load_parallel`];
    /// `0` uses the machine's available parallelism). Returns the number
    /// of routes applied.
    ///
    /// This is the table-dump fast path: import policy and propagation are
    /// bypassed (the routes are installed exactly as given), matching how
    /// an operator preloads a full table before bringing sessions up.
    pub fn load_routes(&mut self, routes: Vec<Route>, workers: usize) -> usize {
        let loaded = self.rib.load_parallel(routes, workers);
        self.stats.prefixes_announced += loaded as u64;
        self.stats.routes_accepted += loaded as u64;
        loaded
    }

    /// Bulk-loads routes through each route's import policy, with policy
    /// evaluation running on the same worker threads that fan the inserts
    /// out across disjoint RIB shards ([`Rib::load_parallel_filtered`]).
    ///
    /// Semantics per route match [`BgpRouter::apply_import`] keyed by
    /// [`Route::learned_from`]: unknown peers and references to missing
    /// filters reject (fail closed), peers without an import filter accept
    /// as-is, and accepted routes carry the filter's attribute
    /// modifications. Propagation is still bypassed and per-peer counters
    /// are not updated, exactly like [`BgpRouter::load_routes`]. Returns
    /// the number of routes accepted.
    pub fn load_routes_filtered(&mut self, routes: Vec<Route>, workers: usize) -> usize {
        let total = routes.len();
        let config = &self.config;
        let peers = &self.peers;
        let import = |route: Route| -> Option<Route> {
            let peer = peers.get(&route.learned_from)?;
            let Some(filter_name) = &peer.import_filter else {
                return Some(route);
            };
            let filter = config.filter(filter_name)?;
            let mut ctx = ExecCtx::new();
            let outcome = eval_filter(filter, &RouteView::concrete(&route), &mut ctx);
            Self::apply_outcome(route, &outcome)
        };
        let accepted = self.rib.load_parallel_filtered(routes, workers, import);
        self.stats.prefixes_announced += total as u64;
        self.stats.routes_accepted += accepted as u64;
        self.stats.routes_rejected += (total - accepted) as u64;
        accepted
    }

    /// Router-wide counters.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// Resets the counters (used between measurement windows).
    pub fn reset_stats(&mut self) {
        self.stats = RouterStats::default();
        for p in self.peers.values_mut() {
            p.stats = Default::default();
        }
    }

    /// Iterates over the peers.
    pub fn peers(&self) -> impl Iterator<Item = &Peer> {
        self.peers.values()
    }

    /// Looks up a peer by id.
    pub fn peer(&self, id: PeerId) -> Option<&Peer> {
        self.peers.get(&id)
    }

    /// Looks up a peer id by address.
    pub fn peer_by_address(&self, address: Ipv4Addr) -> Option<PeerId> {
        self.by_address.get(&address).copied()
    }

    /// Brings every configured session to `Established` (the simulator's
    /// shortcut for the OPEN/KEEPALIVE handshake).
    pub fn start(&mut self) {
        for p in self.peers.values_mut() {
            p.session.establish();
        }
    }

    /// Handles one incoming message from a peer, returning the messages to
    /// send in response. This is the "message handler" the paper asks the
    /// programmer to identify for DiCE (§2.3).
    pub fn handle_message(&mut self, from: PeerId, msg: &BgpMessage) -> Vec<Outgoing> {
        let Some(peer) = self.peers.get_mut(&from) else {
            return Vec::new();
        };
        match msg {
            BgpMessage::Open(open) => {
                peer.router_id = open.bgp_identifier;
                // Receiving an OPEN implies the transport came up; drive the
                // FSM through the passive-open sequence.
                peer.session.handle(SessionEvent::ManualStart);
                peer.session.handle(SessionEvent::TransportConnected);
                peer.session.handle(SessionEvent::OpenReceived);
                let reply = vec![
                    (
                        from,
                        BgpMessage::Open(OpenMessage::new(
                            self.config.local_as,
                            90,
                            u32::from(self.config.router_id),
                        )),
                    ),
                    (from, BgpMessage::Keepalive(KeepaliveMessage)),
                ];
                self.stats.messages_sent += reply.len() as u64;
                reply
            }
            BgpMessage::Keepalive(_) => {
                peer.session.handle(SessionEvent::KeepaliveReceived);
                Vec::new()
            }
            BgpMessage::Notification(_) => {
                peer.session.handle(SessionEvent::NotificationReceived);
                Vec::new()
            }
            BgpMessage::Update(update) => {
                peer.session.handle(SessionEvent::UpdateReceived);
                self.handle_update(from, update)
            }
        }
    }

    /// Handles an UPDATE message: withdrawals, import filtering, RIB
    /// insertion and propagation to the other peers.
    pub fn handle_update(&mut self, from: PeerId, update: &UpdateMessage) -> Vec<Outgoing> {
        self.stats.updates_processed += 1;
        if let Some(p) = self.peers.get_mut(&from) {
            p.stats.updates_in += 1;
        }
        let mut out = Vec::new();

        for prefix in &update.withdrawn {
            self.stats.prefixes_withdrawn += 1;
            if let Some(p) = self.peers.get_mut(&from) {
                p.stats.withdrawals += 1;
            }
            let change = self.rib.withdraw(prefix, from);
            out.extend(self.propagate(change, Some(from)));
        }

        if update.nlri.is_empty() {
            self.stats.messages_sent += out.len() as u64;
            return out;
        }

        let attrs = update.route_attrs();
        // eBGP loop detection: a path containing the local AS is dropped.
        if attrs.as_path.contains(Asn(self.config.local_as)) {
            self.stats.routes_rejected += update.nlri.len() as u64;
            self.stats.messages_sent += out.len() as u64;
            return out;
        }
        let peer_router_id = self.peers.get(&from).map(|p| p.router_id).unwrap_or(0);

        for prefix in &update.nlri {
            self.stats.prefixes_announced += 1;
            let route = Route::new(*prefix, attrs.clone(), from, peer_router_id);
            match self.apply_import(from, route) {
                Some(imported) => {
                    self.stats.routes_accepted += 1;
                    if let Some(p) = self.peers.get_mut(&from) {
                        p.stats.routes_accepted += 1;
                    }
                    let change = self.rib.announce(imported);
                    out.extend(self.propagate(change, Some(from)));
                }
                None => {
                    self.stats.routes_rejected += 1;
                    if let Some(p) = self.peers.get_mut(&from) {
                        p.stats.routes_rejected += 1;
                    }
                }
            }
        }
        self.stats.messages_sent += out.len() as u64;
        out
    }

    /// Applies the import policy of `from` to a candidate route, returning
    /// the (possibly modified) route if it is accepted.
    pub fn apply_import(&self, from: PeerId, route: Route) -> Option<Route> {
        let peer = self.peers.get(&from)?;
        let Some(filter_name) = &peer.import_filter else {
            return Some(route);
        };
        let Some(filter) = self.config.filter(filter_name) else {
            // Referencing a missing filter rejects everything (fail closed).
            return None;
        };
        let mut ctx = ExecCtx::new();
        let outcome = eval_filter(filter, &RouteView::concrete(&route), &mut ctx);
        Self::apply_outcome(route, &outcome)
    }

    /// Applies a filter outcome's attribute modifications to a route.
    pub fn apply_outcome(mut route: Route, outcome: &FilterOutcome) -> Option<Route> {
        if !outcome.is_accept() {
            return None;
        }
        if let Some(lp) = outcome.local_pref {
            route.attrs.local_pref = Some(lp);
        }
        if let Some(med) = outcome.med {
            route.attrs.med = Some(med);
        }
        for (a, b) in &outcome.added_communities {
            route.attrs.communities.push(Community::new(*a, *b));
        }
        Some(route)
    }

    /// Originates a prefix locally and returns the announcements to send.
    pub fn originate(&mut self, prefix: Ipv4Prefix, next_hop: Ipv4Addr) -> Vec<Outgoing> {
        let attrs = RouteAttrs {
            next_hop,
            ..Default::default()
        };
        let change = self.rib.announce(Route::local(prefix, attrs));
        let out = self.propagate(change, None);
        self.stats.messages_sent += out.len() as u64;
        out
    }

    /// Tears the session to `peer` down with RFC 4271 table semantics: the
    /// FSM drops out of `Established`, every RIB candidate learned from the
    /// peer is withdrawn, and best-route changes propagate as withdrawal
    /// UPDATEs to the remaining established peers. The session stays down
    /// until [`BgpRouter::reestablish_session`] (or a fresh OPEN) brings it
    /// back; withdrawn routes do not return by themselves.
    pub fn reset_session(&mut self, peer: PeerId) -> SessionResetOutcome {
        let Some(p) = self.peers.get_mut(&peer) else {
            return SessionResetOutcome::default();
        };
        p.session.handle(SessionEvent::TransportFailed);
        let prefixes: Vec<Ipv4Prefix> = self
            .rib
            .loc_rib()
            .map(|(prefix, _)| prefix)
            .filter(|prefix| self.rib.candidates(prefix).any(|r| r.learned_from == peer))
            .collect();
        let mut outgoing = Vec::new();
        for prefix in &prefixes {
            self.stats.prefixes_withdrawn += 1;
            let change = self.rib.withdraw(prefix, peer);
            outgoing.extend(self.propagate(change, Some(peer)));
        }
        self.stats.messages_sent += outgoing.len() as u64;
        SessionResetOutcome {
            withdrawn_routes: prefixes.len(),
            outgoing,
        }
    }

    /// Brings the session to `peer` back to `Established` (the simulator's
    /// shortcut for the reconnect handshake after a reset).
    pub fn reestablish_session(&mut self, peer: PeerId) {
        if let Some(p) = self.peers.get_mut(&peer) {
            p.session.establish();
        }
    }

    /// Builds the UPDATE sent to `to` for a best-route change, applying the
    /// export filter. Returns `None` when the export policy rejects the
    /// route or the peer is not established.
    pub fn export_route(&self, to: &Peer, route: &Route) -> Option<UpdateMessage> {
        if !to.is_established() {
            return None;
        }
        let outcome = match &to.export_filter {
            None => FilterOutcome::accepted(),
            Some(name) => {
                let filter = self.config.filter(name)?;
                let mut ctx = ExecCtx::new();
                eval_filter(filter, &RouteView::concrete(route), &mut ctx)
            }
        };
        if !outcome.is_accept() {
            return None;
        }
        let mut attrs = route.attrs.clone();
        // eBGP export: prepend the local AS (plus any extra prepends), reset
        // the next hop to ourselves and strip LOCAL_PREF.
        attrs.as_path = attrs
            .as_path
            .prepend(Asn(self.config.local_as), 1 + outcome.prepend as usize);
        attrs.next_hop = self.config.router_id;
        attrs.local_pref = None;
        if let Some(med) = outcome.med {
            attrs.med = Some(med);
        }
        for (a, b) in &outcome.added_communities {
            attrs.communities.push(Community::new(*a, *b));
        }
        Some(UpdateMessage::announce(vec![route.prefix], &attrs))
    }

    /// Turns a Loc-RIB change into the UPDATEs sent to the other peers.
    fn propagate(&mut self, change: RibChange, learned_from: Option<PeerId>) -> Vec<Outgoing> {
        let mut out = Vec::new();
        match change {
            RibChange::Unchanged => {}
            RibChange::Updated(route) => {
                let targets: Vec<PeerId> = self
                    .peers
                    .values()
                    .filter(|p| Some(p.id) != learned_from && p.is_established())
                    .map(|p| p.id)
                    .collect();
                for id in targets {
                    let peer = &self.peers[&id];
                    if let Some(update) = self.export_route(peer, &route) {
                        out.push((id, BgpMessage::Update(update)));
                    }
                }
            }
            RibChange::Removed(prefix) => {
                for (id, peer) in &self.peers {
                    if Some(*id) != learned_from && peer.is_established() {
                        out.push((
                            *id,
                            BgpMessage::Update(UpdateMessage::withdraw(vec![prefix])),
                        ));
                    }
                }
            }
        }
        for (id, _) in &out {
            if let Some(p) = self.peers.get_mut(id) {
                p.stats.updates_out += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NeighborConfig;
    use crate::policy::parse_filter;
    use dice_bgp::AsPath;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().expect("valid prefix")
    }

    /// A Provider router (AS 3491) with a customer (AS 17557) and a transit
    /// peer (AS 1299) — the Figure 2 topology seen from the middle.
    fn provider() -> BgpRouter {
        let customer_filter = parse_filter(
            r#"filter customer_in {
                if net ~ [ 208.65.152.0/22{22,24} ] then accept;
                reject;
            }"#,
        )
        .expect("parses");
        let config = RouterConfig::new(Ipv4Addr::new(10, 0, 0, 2), 3491)
            .with_filter(customer_filter)
            .with_filter(crate::policy::FilterDef::accept_all("all"))
            .with_neighbor(NeighborConfig {
                address: Ipv4Addr::new(10, 0, 1, 1),
                remote_as: 17557,
                import_filter: Some("customer_in".into()),
                export_filter: Some("all".into()),
            })
            .with_neighbor(NeighborConfig {
                address: Ipv4Addr::new(10, 0, 2, 1),
                remote_as: 1299,
                import_filter: Some("all".into()),
                export_filter: Some("all".into()),
            });
        let mut r = BgpRouter::new(config);
        r.start();
        r
    }

    fn update(prefix: &str, path: &[u32]) -> UpdateMessage {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence(path.iter().copied());
        attrs.next_hop = Ipv4Addr::new(10, 0, 1, 1);
        UpdateMessage::announce(vec![p(prefix)], &attrs)
    }

    #[test]
    fn accepted_route_is_installed_and_propagated() {
        let mut r = provider();
        let customer = r.peer_by_address(Ipv4Addr::new(10, 0, 1, 1)).expect("peer");
        let out = r.handle_update(customer, &update("208.65.152.0/22", &[17557, 36561]));
        assert_eq!(r.rib().prefix_count(), 1);
        assert_eq!(r.stats().routes_accepted, 1);
        // Propagated to the transit peer only (not back to the customer).
        assert_eq!(out.len(), 1);
        let (to, msg) = &out[0];
        assert_eq!(
            *to,
            r.peer_by_address(Ipv4Addr::new(10, 0, 2, 1)).expect("peer")
        );
        let exported = msg.as_update().expect("update");
        let attrs = exported.route_attrs();
        // The local AS was prepended and LOCAL_PREF stripped.
        assert_eq!(attrs.as_path.neighbor_as().map(|a| a.value()), Some(3491));
        assert_eq!(attrs.local_pref, None);
        assert_eq!(attrs.next_hop, Ipv4Addr::new(10, 0, 0, 2));
    }

    #[test]
    fn filtered_route_is_rejected() {
        let mut r = provider();
        let customer = r.peer_by_address(Ipv4Addr::new(10, 0, 1, 1)).expect("peer");
        // The customer leaks a prefix outside its allocation (the YouTube
        // /24 belongs to AS 36561's 208.65.152.0/22 but an unrelated /16
        // must be rejected by the prefix filter).
        let out = r.handle_update(customer, &update("8.8.0.0/16", &[17557]));
        assert!(out.is_empty());
        assert_eq!(r.rib().prefix_count(), 0);
        assert_eq!(r.stats().routes_rejected, 1);
    }

    #[test]
    fn transit_routes_bypass_customer_filter() {
        let mut r = provider();
        let transit = r.peer_by_address(Ipv4Addr::new(10, 0, 2, 1)).expect("peer");
        let out = r.handle_update(transit, &update("8.8.0.0/16", &[1299, 15169]));
        assert_eq!(r.rib().prefix_count(), 1);
        // Propagated to the customer.
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn withdrawal_removes_route_and_propagates() {
        let mut r = provider();
        let customer = r.peer_by_address(Ipv4Addr::new(10, 0, 1, 1)).expect("peer");
        r.handle_update(customer, &update("208.65.152.0/22", &[17557, 36561]));
        let out = r.handle_update(
            customer,
            &UpdateMessage::withdraw(vec![p("208.65.152.0/22")]),
        );
        assert_eq!(r.rib().prefix_count(), 0);
        assert_eq!(out.len(), 1);
        let (_, msg) = &out[0];
        assert_eq!(
            msg.as_update().expect("update").withdrawn,
            vec![p("208.65.152.0/22")]
        );
        assert_eq!(r.stats().prefixes_withdrawn, 1);
    }

    #[test]
    fn as_path_loop_is_dropped() {
        let mut r = provider();
        let transit = r.peer_by_address(Ipv4Addr::new(10, 0, 2, 1)).expect("peer");
        let out = r.handle_update(transit, &update("9.9.9.0/24", &[1299, 3491, 100]));
        assert!(out.is_empty());
        assert_eq!(r.rib().prefix_count(), 0);
        assert_eq!(r.stats().routes_rejected, 1);
    }

    #[test]
    fn open_handshake_establishes_session() {
        let config =
            RouterConfig::new(Ipv4Addr::new(10, 0, 0, 1), 65001).with_neighbor(NeighborConfig {
                address: Ipv4Addr::new(10, 0, 0, 9),
                remote_as: 65009,
                import_filter: None,
                export_filter: None,
            });
        let mut r = BgpRouter::new(config);
        let peer = r.peer_by_address(Ipv4Addr::new(10, 0, 0, 9)).expect("peer");
        let replies = r.handle_message(
            peer,
            &BgpMessage::Open(OpenMessage::new(65009, 90, 0x0a000009)),
        );
        assert_eq!(replies.len(), 2);
        let _ = r.handle_message(peer, &BgpMessage::Keepalive(KeepaliveMessage));
        assert!(r.peer(peer).expect("peer").is_established());
        // The learned router id is used for decision tie-breaks.
        assert_eq!(r.peer(peer).expect("peer").router_id, 0x0a000009);
    }

    #[test]
    fn static_routes_are_installed_and_originated() {
        let config = RouterConfig::new(Ipv4Addr::new(10, 0, 0, 1), 65001)
            .with_neighbor(NeighborConfig {
                address: Ipv4Addr::new(10, 0, 0, 9),
                remote_as: 65009,
                import_filter: None,
                export_filter: None,
            })
            .with_static_route(p("203.0.113.0/24"), Ipv4Addr::new(10, 0, 0, 1));
        let mut r = BgpRouter::new(config);
        assert_eq!(r.rib().prefix_count(), 1);
        r.start();
        let out = r.originate(p("198.51.100.0/24"), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(out.len(), 1);
        assert_eq!(r.rib().prefix_count(), 2);
        let exported = out[0].1.as_update().expect("update").route_attrs();
        assert_eq!(exported.as_path.flatten(), vec![Asn(65001)]);
    }

    #[test]
    fn updates_to_unestablished_peers_are_suppressed() {
        let mut r = provider();
        // Tear the transit session down; announcements should go nowhere.
        let transit = r.peer_by_address(Ipv4Addr::new(10, 0, 2, 1)).expect("peer");
        r.peers
            .get_mut(&transit)
            .expect("peer")
            .session
            .handle(SessionEvent::NotificationReceived);
        let customer = r.peer_by_address(Ipv4Addr::new(10, 0, 1, 1)).expect("peer");
        let out = r.handle_update(customer, &update("208.65.152.0/22", &[17557, 36561]));
        assert!(out.is_empty());
        assert_eq!(r.rib().prefix_count(), 1);
    }

    #[test]
    fn missing_filter_reference_fails_closed() {
        let config =
            RouterConfig::new(Ipv4Addr::new(10, 0, 0, 1), 65001).with_neighbor(NeighborConfig {
                address: Ipv4Addr::new(10, 0, 0, 9),
                remote_as: 65009,
                import_filter: Some("nonexistent".into()),
                export_filter: None,
            });
        let mut r = BgpRouter::new(config);
        r.start();
        let peer = r.peer_by_address(Ipv4Addr::new(10, 0, 0, 9)).expect("peer");
        let out = r.handle_update(peer, &update("10.0.0.0/8", &[65009]));
        assert!(out.is_empty());
        assert_eq!(r.rib().prefix_count(), 0);
        assert_eq!(r.stats().routes_rejected, 1);
    }

    #[test]
    fn clone_is_cow_and_deep_clone_is_independent() {
        let mut live = provider();
        let customer = live
            .peer_by_address(Ipv4Addr::new(10, 0, 1, 1))
            .expect("peer");
        live.handle_update(customer, &update("208.65.152.0/22", &[17557, 36561]));

        // A checkpoint clone shares every untouched RIB shard...
        let checkpoint = live.clone();
        let (shared, total) = checkpoint.rib().cow_shard_sharing(live.rib());
        assert_eq!(shared, total);
        // ...and live writes after the checkpoint copy only what changed,
        // never leaking into the checkpoint.
        live.handle_update(customer, &update("208.65.154.0/24", &[17557, 36561]));
        assert_eq!(live.rib().prefix_count(), 2);
        assert_eq!(checkpoint.rib().prefix_count(), 1);
        let (shared_after, _) = checkpoint.rib().cow_shard_sharing(live.rib());
        assert!(shared_after < total);
        assert!(
            shared_after >= total - 2,
            "at most the touched shards copied"
        );

        // deep_clone shares nothing from the start.
        let deep = live.deep_clone();
        assert_eq!(deep.rib().cow_shard_sharing(live.rib()).0, 0);
        assert_eq!(deep.rib().prefix_count(), live.rib().prefix_count());
    }

    #[test]
    fn load_routes_installs_without_filtering_or_propagation() {
        let mut r = provider();
        let routes: Vec<Route> = (0..100u32)
            .map(|i| {
                let mut attrs = RouteAttrs::default();
                attrs.as_path = AsPath::from_sequence([1299, 100_000 + i]);
                attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
                Route::new(
                    Ipv4Prefix::new((20 << 24) | (i << 8), 24).expect("valid"),
                    attrs,
                    PeerId(2),
                    2,
                )
            })
            .collect();
        let loaded = r.load_routes(routes, 0);
        assert_eq!(loaded, 100);
        assert_eq!(r.rib().prefix_count(), 100);
        assert_eq!(r.stats().routes_accepted, 100);
        // Nothing was queued toward peers: the fast path skips propagation.
        assert_eq!(r.stats().messages_sent, 0);
    }

    #[test]
    fn load_routes_filtered_matches_serial_import() {
        // A mixed batch: customer routes inside and outside the allowed
        // block, transit routes (accept-all filter), and routes from an
        // unknown peer (fail closed). The parallel filtered ingest must
        // land exactly the table the serial apply_import path produces.
        let template = provider();
        let customer = template
            .peer_by_address(Ipv4Addr::new(10, 0, 1, 1))
            .expect("peer");
        let transit = template
            .peer_by_address(Ipv4Addr::new(10, 0, 2, 1))
            .expect("peer");
        let mut routes: Vec<Route> = Vec::new();
        for i in 0..200u32 {
            let (peer, prefix) = match i % 4 {
                // In the customer's allocation: accepted by customer_in.
                0 => (
                    customer,
                    Ipv4Prefix::new((208 << 24) | (65 << 16) | (152 << 8), 24),
                ),
                // Outside it: rejected by customer_in.
                1 => (customer, Ipv4Prefix::new((8 << 24) | (i << 8), 24)),
                // Transit: accept-all.
                2 => (transit, Ipv4Prefix::new((20 << 24) | (i << 8), 24)),
                // Unknown peer: fail closed.
                _ => (PeerId(999), Ipv4Prefix::new((30 << 24) | (i << 8), 24)),
            };
            let mut attrs = RouteAttrs::default();
            attrs.as_path = AsPath::from_sequence([1299, 100_000 + i]);
            attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
            routes.push(Route::new(prefix.expect("valid"), attrs, peer, peer.0));
        }

        let mut serial = provider();
        let mut accepted_serial = 0usize;
        for route in routes.clone() {
            if let Some(imported) = serial.apply_import(route.learned_from, route) {
                serial.rib.announce(imported);
                accepted_serial += 1;
            }
        }
        assert!(
            accepted_serial < routes.len(),
            "some routes must be rejected"
        );

        for workers in [0usize, 1, 4] {
            let mut parallel = provider();
            let accepted = parallel.load_routes_filtered(routes.clone(), workers);
            assert_eq!(accepted, accepted_serial, "workers={workers}");
            let a: Vec<(Ipv4Prefix, Route)> = parallel
                .rib()
                .loc_rib()
                .map(|(p, r)| (p, r.clone()))
                .collect();
            let b: Vec<(Ipv4Prefix, Route)> = serial
                .rib()
                .loc_rib()
                .map(|(p, r)| (p, r.clone()))
                .collect();
            assert_eq!(a, b, "workers={workers}");
            assert_eq!(parallel.stats().routes_accepted, accepted as u64);
            assert_eq!(
                parallel.stats().routes_rejected,
                (routes.len() - accepted) as u64
            );
            // Still the table-dump fast path: nothing queued toward peers.
            assert_eq!(parallel.stats().messages_sent, 0);
        }
    }

    #[test]
    fn stats_reset() {
        let mut r = provider();
        let customer = r.peer_by_address(Ipv4Addr::new(10, 0, 1, 1)).expect("peer");
        r.handle_update(customer, &update("208.65.152.0/22", &[17557, 36561]));
        assert!(r.stats().updates_processed > 0);
        r.reset_stats();
        assert_eq!(r.stats().updates_processed, 0);
    }
}
