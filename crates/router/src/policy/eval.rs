//! Filter interpretation over concolic route views.
//!
//! The interpreter is the DiCE-critical piece of the router: every `if`
//! statement in a filter becomes a branch site, and when the route view's
//! fields are symbolic (during exploration) the recorded constraints
//! describe the *configured* policy, exactly as the paper obtains
//! configuration constraints by instrumenting BIRD's configuration
//! interpreter (§3.2). When the fields are concrete (the live fast path)
//! nothing is recorded and the interpreter behaves like a plain filter
//! engine.

use dice_symexec::{Concolic, ConcolicBool, ExecCtx, TermId, CU32, CU8};

use dice_bgp::route::Route;

use super::ast::{CmpOp, Expr, Field, FilterDef, Stmt};

/// Packs a `(asn, value)` community into the 32-bit wire encoding used by
/// the symbolic community slot (`asn` in the high half). `(0, 0)` encodes
/// to 0, which the slot reserves for "no community attached", so that pair
/// cannot be synthesized — it is not a meaningful community in practice.
pub fn encode_community(asn: u16, value: u16) -> u32 {
    ((asn as u32) << 16) | value as u32
}

/// Unpacks a community slot encoding produced by [`encode_community`].
pub fn decode_community(slot: u32) -> (u16, u16) {
    ((slot >> 16) as u16, (slot & 0xffff) as u16)
}

/// The route fields a filter may inspect, as concolic values.
#[derive(Debug, Clone)]
pub struct RouteView {
    /// Network address of the announced prefix.
    pub prefix_addr: CU32,
    /// Length of the announced prefix.
    pub prefix_len: CU8,
    /// Origin AS (last AS on the path); 0 when the path is empty.
    pub source_as: CU32,
    /// Neighbor AS (first AS on the path); 0 when the path is empty.
    pub neighbor_as: CU32,
    /// AS-path length.
    pub path_len: CU32,
    /// MULTI_EXIT_DISC (0 when absent).
    pub med: CU32,
    /// LOCAL_PREF (100 when absent).
    pub local_pref: CU32,
    /// ORIGIN code.
    pub origin_code: CU8,
    /// Attached communities as observed on the route (always concrete).
    pub communities: Vec<(u16, u16)>,
    /// One symbolic "flexible" community slot, encoded with
    /// [`encode_community`]; 0 means no extra community. `community ~`
    /// tests match when the observed list contains the community *or* the
    /// slot equals its encoding, so the solver can synthesize a community
    /// no observed trace carries.
    pub community_slot: CU32,
}

impl RouteView {
    /// Builds a fully concrete view of a route (the live router path).
    pub fn concrete(route: &Route) -> Self {
        RouteView {
            prefix_addr: Concolic::concrete(route.prefix.addr()),
            prefix_len: Concolic::concrete(route.prefix.len()),
            source_as: Concolic::concrete(route.attrs.origin_as().map(|a| a.value()).unwrap_or(0)),
            neighbor_as: Concolic::concrete(
                route
                    .attrs
                    .as_path
                    .neighbor_as()
                    .map(|a| a.value())
                    .unwrap_or(0),
            ),
            path_len: Concolic::concrete(route.attrs.as_path.length() as u32),
            med: Concolic::concrete(route.attrs.effective_med()),
            local_pref: Concolic::concrete(route.attrs.effective_local_pref()),
            origin_code: Concolic::concrete(route.attrs.origin.code()),
            communities: route
                .attrs
                .communities
                .iter()
                .map(|c| (c.asn_part(), c.value_part()))
                .collect(),
            community_slot: Concolic::concrete(0),
        }
    }
}

/// One executed `if` arm of a filter run: which arm, which way it went, and
/// the condition term guarding it (None when the condition was fully
/// concrete, e.g. on the live fast path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmTrace {
    /// Arm identifier within the filter ([`Stmt::If::id`]).
    pub arm: u32,
    /// Whether the condition held (the `then` branch ran).
    pub taken: bool,
    /// The path constraint guarding the taken direction, when symbolic.
    pub constraint: Option<TermId>,
}

/// Accept/reject decision of a filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterVerdict {
    /// The route passes the filter.
    Accept,
    /// The route is rejected.
    Reject,
}

/// The full outcome of running a filter: the verdict plus any attribute
/// modifications requested by the executed statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterOutcome {
    /// Accept or reject.
    pub verdict: FilterVerdict,
    /// New LOCAL_PREF, if the filter set one.
    pub local_pref: Option<u32>,
    /// New MED, if the filter set one.
    pub med: Option<u32>,
    /// Extra AS-path prepends requested.
    pub prepend: u32,
    /// Communities added by the filter.
    pub added_communities: Vec<(u16, u16)>,
    /// Ordered trace of every `if` arm the run executed, with the path
    /// constraint guarding each. Empty for the trivial outcomes built by
    /// [`FilterOutcome::accepted`]/[`FilterOutcome::rejected`].
    pub trace: Vec<ArmTrace>,
}

impl FilterOutcome {
    /// The outcome of a filter (or absent filter) that rejects the route
    /// outright, with no attribute changes and no arms executed.
    pub fn rejected() -> Self {
        FilterOutcome {
            verdict: FilterVerdict::Reject,
            local_pref: None,
            med: None,
            prepend: 0,
            added_communities: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// The outcome of an absent filter that accepts the route unchanged.
    pub fn accepted() -> Self {
        FilterOutcome {
            verdict: FilterVerdict::Accept,
            ..FilterOutcome::rejected()
        }
    }

    /// Returns true if the filter accepted the route.
    pub fn is_accept(&self) -> bool {
        self.verdict == FilterVerdict::Accept
    }
}

enum Flow {
    Continue,
    Stop(FilterVerdict),
}

/// Evaluates `filter` over `view`, recording branch constraints in `ctx`
/// when the view contains symbolic fields.
///
/// A filter that falls off the end without executing `accept` or `reject`
/// rejects the route, matching BIRD's default.
pub fn eval_filter(filter: &FilterDef, view: &RouteView, ctx: &mut ExecCtx) -> FilterOutcome {
    // Register every arm of the filter as a policy site before executing
    // anything, so arms no run has ever reached still count in the
    // policy-coverage denominator. Skipped on the fully concrete fast path
    // (no symbolic inputs declared), which keeps live ingest free of the
    // label formatting cost.
    if !ctx.var_map().is_empty() {
        for (_, label) in filter.sites() {
            ctx.declare_policy_site(&label);
        }
    }
    let mut outcome = FilterOutcome::rejected();
    match eval_stmts(filter, &filter.body, view, ctx, &mut outcome) {
        Flow::Stop(v) => outcome.verdict = v,
        Flow::Continue => outcome.verdict = FilterVerdict::Reject,
    }
    outcome
}

fn eval_stmts(
    filter: &FilterDef,
    stmts: &[Stmt],
    view: &RouteView,
    ctx: &mut ExecCtx,
    outcome: &mut FilterOutcome,
) -> Flow {
    for stmt in stmts {
        match stmt {
            Stmt::Accept => return Flow::Stop(FilterVerdict::Accept),
            Stmt::Reject => return Flow::Stop(FilterVerdict::Reject),
            Stmt::SetLocalPref(v) => outcome.local_pref = Some(*v as u32),
            Stmt::SetMed(v) => outcome.med = Some(*v as u32),
            Stmt::Prepend(n) => outcome.prepend += *n as u32,
            Stmt::AddCommunity(a, b) => outcome.added_communities.push((*a, *b)),
            Stmt::If {
                id,
                cond,
                then_branch,
                else_branch,
            } => {
                let condition = eval_expr(cond, view, ctx);
                let constraint = condition.term();
                let taken = if ctx.var_map().is_empty() {
                    // Fully concrete fast path: no site bookkeeping, no
                    // label formatting — live ingest just follows the arm.
                    condition.value()
                } else {
                    // The branch site is the configuration AST node, so
                    // recorded constraints attribute coverage to the
                    // *configuration*.
                    let label = filter.site_label(*id);
                    ctx.policy_branch_labeled(&label, condition)
                };
                outcome.trace.push(ArmTrace {
                    arm: *id,
                    taken,
                    constraint,
                });
                let branch = if taken { then_branch } else { else_branch };
                match eval_stmts(filter, branch, view, ctx, outcome) {
                    Flow::Continue => {}
                    stop => return stop,
                }
            }
        }
    }
    Flow::Continue
}

/// Evaluates a condition to a concolic boolean.
pub fn eval_expr(expr: &Expr, view: &RouteView, ctx: &mut ExecCtx) -> ConcolicBool {
    match expr {
        Expr::True => ConcolicBool::concrete(true),
        Expr::False => ConcolicBool::concrete(false),
        Expr::Not(inner) => {
            let v = eval_expr(inner, view, ctx);
            v.not(ctx)
        }
        Expr::And(a, b) => {
            let va = eval_expr(a, view, ctx);
            let vb = eval_expr(b, view, ctx);
            va.and(&vb, ctx)
        }
        Expr::Or(a, b) => {
            let va = eval_expr(a, view, ctx);
            let vb = eval_expr(b, view, ctx);
            va.or(&vb, ctx)
        }
        Expr::CommunityMatch(a, b) => {
            // A route matches when the observed (always concrete) community
            // list contains the community, or when the symbolic flexible
            // slot carries it — the latter is what lets the solver attach a
            // community no observed announcement had. `(0, 0)` is excluded:
            // its encoding collides with the slot's "no community" value.
            let observed = ConcolicBool::concrete(view.communities.contains(&(*a, *b)));
            let encoded = encode_community(*a, *b);
            if encoded == 0 {
                observed
            } else {
                let slot_hit = view.community_slot.eq(&Concolic::concrete(encoded), ctx);
                observed.or(&slot_hit, ctx)
            }
        }
        Expr::FieldCmp { field, op, value } => {
            let (lhs32, lhs8): (Option<CU32>, Option<CU8>) = match field {
                Field::SourceAs => (Some(view.source_as), None),
                Field::NeighborAs => (Some(view.neighbor_as), None),
                Field::PathLen => (Some(view.path_len), None),
                Field::Med => (Some(view.med), None),
                Field::LocalPref => (Some(view.local_pref), None),
                Field::OriginCode => (None, Some(view.origin_code)),
                Field::PrefixLen => (None, Some(view.prefix_len)),
            };
            if let Some(lhs) = lhs32 {
                let rhs = Concolic::concrete(*value as u32);
                apply_cmp32(*op, &lhs, &rhs, ctx)
            } else {
                let lhs = lhs8.expect("either 32-bit or 8-bit field");
                let rhs = Concolic::concrete(*value as u8);
                apply_cmp8(*op, &lhs, &rhs, ctx)
            }
        }
        Expr::NetMatch(patterns) => {
            let mut acc = ConcolicBool::concrete(false);
            for p in patterns {
                let m = match_pattern(p, view, ctx);
                acc = acc.or(&m, ctx);
            }
            acc
        }
    }
}

fn apply_cmp32(op: CmpOp, lhs: &CU32, rhs: &CU32, ctx: &mut ExecCtx) -> ConcolicBool {
    match op {
        CmpOp::Eq => lhs.eq(rhs, ctx),
        CmpOp::Ne => lhs.ne(rhs, ctx),
        CmpOp::Lt => lhs.lt(rhs, ctx),
        CmpOp::Le => lhs.le(rhs, ctx),
        CmpOp::Gt => lhs.gt(rhs, ctx),
        CmpOp::Ge => lhs.ge(rhs, ctx),
    }
}

fn apply_cmp8(op: CmpOp, lhs: &CU8, rhs: &CU8, ctx: &mut ExecCtx) -> ConcolicBool {
    match op {
        CmpOp::Eq => lhs.eq(rhs, ctx),
        CmpOp::Ne => lhs.ne(rhs, ctx),
        CmpOp::Lt => lhs.lt(rhs, ctx),
        CmpOp::Le => lhs.le(rhs, ctx),
        CmpOp::Gt => lhs.gt(rhs, ctx),
        CmpOp::Ge => lhs.ge(rhs, ctx),
    }
}

/// Matches the announced prefix against one prefix pattern: the announced
/// network must lie inside the pattern's covering prefix and its length
/// must fall in the admitted range.
///
/// Containment is expressed as a range check (`network <= addr <=
/// broadcast` plus `len >= pattern.len`) rather than a shift-and-compare:
/// the two are equivalent, but range constraints are what the solver's
/// interval propagation digests directly, so negated prefix-set predicates
/// reliably yield concrete NLRI values inside/outside the set — the
/// "manipulation of the NLRI" the route-leak experiment relies on.
fn match_pattern(
    pattern: &super::ast::PrefixPattern,
    view: &RouteView,
    ctx: &mut ExecCtx,
) -> ConcolicBool {
    let plen = pattern.prefix.len();
    let covered = if plen == 0 {
        ConcolicBool::concrete(true)
    } else {
        let lo = Concolic::concrete(pattern.prefix.addr());
        let hi = Concolic::concrete(pattern.prefix.broadcast());
        let ge_lo = view.prefix_addr.ge(&lo, ctx);
        let le_hi = view.prefix_addr.le(&hi, ctx);
        let len_ok = view.prefix_len.ge(&Concolic::concrete(plen), ctx);
        let in_block = ge_lo.and(&le_hi, ctx);
        in_block.and(&len_ok, ctx)
    };
    let min = Concolic::concrete(pattern.min_len);
    let max = Concolic::concrete(pattern.max_len);
    let ge_min = view.prefix_len.ge(&min, ctx);
    let le_max = view.prefix_len.le(&max, ctx);
    let in_range = ge_min.and(&le_max, ctx);
    covered.and(&in_range, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::parser::parse_filter;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::prefix::Ipv4Prefix;
    use dice_bgp::route::{PeerId, Route};
    use dice_bgp::AsPath;
    use std::net::Ipv4Addr;

    fn route(prefix: &str, path: &[u32]) -> Route {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence(path.iter().copied());
        attrs.next_hop = Ipv4Addr::new(10, 0, 1, 1);
        Route::new(
            prefix.parse::<Ipv4Prefix>().expect("valid"),
            attrs,
            PeerId(1),
            1,
        )
    }

    const CUSTOMER_FILTER: &str = r#"
        filter customer_in {
            if net ~ [ 208.65.152.0/22{22,24} ] then {
                if source_as = 36561 then {
                    local_pref = 200;
                    accept;
                }
            }
            reject;
        }
    "#;

    #[test]
    fn concrete_evaluation_accepts_legitimate_route() {
        let filter = parse_filter(CUSTOMER_FILTER).expect("parses");
        let mut ctx = ExecCtx::new();
        let r = route("208.65.152.0/22", &[36561]);
        let out = eval_filter(&filter, &RouteView::concrete(&r), &mut ctx);
        assert!(out.is_accept());
        assert_eq!(out.local_pref, Some(200));
        // Concrete evaluation records no constraints.
        assert!(ctx.branches().is_empty());
    }

    #[test]
    fn concrete_evaluation_rejects_foreign_route() {
        let filter = parse_filter(CUSTOMER_FILTER).expect("parses");
        let mut ctx = ExecCtx::new();
        // Wrong origin AS (the hijacker).
        let r = route("208.65.153.0/24", &[17557]);
        let out = eval_filter(&filter, &RouteView::concrete(&r), &mut ctx);
        assert!(!out.is_accept());
        // Prefix outside the customer's block.
        let r = route("8.8.8.0/24", &[36561]);
        assert!(!eval_filter(&filter, &RouteView::concrete(&r), &mut ctx).is_accept());
        // Too-specific prefix (/25 exceeds the {22,24} range).
        let r = route("208.65.153.0/25", &[36561]);
        assert!(!eval_filter(&filter, &RouteView::concrete(&r), &mut ctx).is_accept());
    }

    #[test]
    fn symbolic_evaluation_records_configuration_branches() {
        let filter = parse_filter(CUSTOMER_FILTER).expect("parses");
        let mut ctx = ExecCtx::new();
        let view = RouteView {
            prefix_addr: ctx.symbolic_u32("nlri.addr", u32::from_be_bytes([208, 65, 152, 0])),
            prefix_len: ctx.symbolic_u8("nlri.len", 22),
            source_as: ctx.symbolic_u32("attr.source_as", 36561),
            neighbor_as: Concolic::concrete(36561),
            path_len: Concolic::concrete(1),
            med: Concolic::concrete(0),
            local_pref: Concolic::concrete(100),
            origin_code: Concolic::concrete(0),
            communities: Vec::new(),
            community_slot: Concolic::concrete(0),
        };
        let out = eval_filter(&filter, &view, &mut ctx);
        assert!(out.is_accept());
        // Both `if` statements were evaluated over symbolic data.
        assert_eq!(ctx.branches().len(), 2);
        // The outcome carries the ordered arm trace with constraints.
        assert_eq!(out.trace.len(), 2);
        assert_eq!((out.trace[0].arm, out.trace[0].taken), (0, true));
        assert_eq!((out.trace[1].arm, out.trace[1].taken), (1, true));
        assert!(out.trace.iter().all(|t| t.constraint.is_some()));
        // Every arm of the filter is registered as a policy site, keyed by
        // its stable label.
        assert_eq!(ctx.policy_sites().len(), 2);
        // The path constraints hold for the concrete input used.
        let constraints = ctx.path_constraints();
        let model = ctx.concrete_model().clone();
        assert!(model.satisfies_all(ctx.arena(), &constraints));
    }

    #[test]
    fn default_is_reject_and_actions_accumulate() {
        let filter = parse_filter(
            "filter f { med = 30; prepend 2; add community (65000, 1); if false then accept; }",
        )
        .expect("parses");
        let mut ctx = ExecCtx::new();
        let out = eval_filter(
            &filter,
            &RouteView::concrete(&route("10.0.0.0/8", &[1])),
            &mut ctx,
        );
        assert!(!out.is_accept());
        assert_eq!(out.med, Some(30));
        assert_eq!(out.prepend, 2);
        assert_eq!(out.added_communities, vec![(65000, 1)]);
    }

    #[test]
    fn else_branches_and_boolean_operators() {
        let src = r#"
            filter f {
                if path_len > 5 || med >= 1000 then {
                    reject;
                } else {
                    if ! (origin = 2) && neighbor_as != 666 then accept;
                }
                reject;
            }
        "#;
        let filter = parse_filter(src).expect("parses");
        let mut ctx = ExecCtx::new();
        let good = route("10.0.0.0/8", &[100, 200]);
        assert!(eval_filter(&filter, &RouteView::concrete(&good), &mut ctx).is_accept());
        let long = route("10.0.0.0/8", &[1, 2, 3, 4, 5, 6]);
        assert!(!eval_filter(&filter, &RouteView::concrete(&long), &mut ctx).is_accept());
        let from_666 = route("10.0.0.0/8", &[666, 200]);
        assert!(!eval_filter(&filter, &RouteView::concrete(&from_666), &mut ctx).is_accept());
    }

    #[test]
    fn community_match_is_concrete() {
        let src = "filter f { if community ~ (65000, 666) then reject; accept; }";
        let filter = parse_filter(src).expect("parses");
        let mut ctx = ExecCtx::new();
        let mut r = route("10.0.0.0/8", &[100]);
        assert!(eval_filter(&filter, &RouteView::concrete(&r), &mut ctx).is_accept());
        r.attrs
            .communities
            .push(dice_bgp::Community::new(65000, 666));
        assert!(!eval_filter(&filter, &RouteView::concrete(&r), &mut ctx).is_accept());
    }

    #[test]
    fn symbolic_community_slot_makes_community_match_explorable() {
        let src = "filter f { if community ~ (65000, 666) then accept; reject; }";
        let filter = parse_filter(src).expect("parses");
        let mut ctx = ExecCtx::new();
        let r = route("10.0.0.0/8", &[100]);
        // Slot carries no community, so the concrete run is rejected — but
        // the condition is symbolic, so the branch is recorded and its
        // untaken direction can be negated to synthesize the community.
        let view = RouteView {
            community_slot: ctx.symbolic_u32("attr.community", 0),
            ..RouteView::concrete(&r)
        };
        assert!(!eval_filter(&filter, &view, &mut ctx).is_accept());
        assert_eq!(ctx.branches().len(), 1);
        assert!(!ctx.branches()[0].taken);
        // A slot carrying the encoding satisfies the match.
        let mut ctx = ExecCtx::new();
        let view = RouteView {
            community_slot: ctx.symbolic_u32("attr.community", encode_community(65000, 666)),
            ..RouteView::concrete(&r)
        };
        assert!(eval_filter(&filter, &view, &mut ctx).is_accept());
    }

    #[test]
    fn community_encoding_round_trips() {
        assert_eq!(decode_community(encode_community(65000, 666)), (65000, 666));
        assert_eq!(encode_community(0, 0), 0);
        assert_eq!(decode_community(0), (0, 0));
    }

    #[test]
    fn prefix_len_field_comparison() {
        let src = "filter f { if net.len > 24 then reject; accept; }";
        let filter = parse_filter(src).expect("parses");
        let mut ctx = ExecCtx::new();
        assert!(eval_filter(
            &filter,
            &RouteView::concrete(&route("10.0.0.0/24", &[1])),
            &mut ctx
        )
        .is_accept());
        assert!(!eval_filter(
            &filter,
            &RouteView::concrete(&route("10.0.0.0/25", &[1])),
            &mut ctx
        )
        .is_accept());
    }
}
