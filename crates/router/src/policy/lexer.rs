//! Tokenizer for the filter/configuration language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Unsigned integer literal.
    Number(u64),
    /// Dotted-quad IPv4 address literal.
    IpAddr(u32),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `/`
    Slash,
    /// `~`
    Tilde,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `+`
    Plus,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::IpAddr(a) => write!(f, "{}", std::net::Ipv4Addr::from(*a)),
            other => {
                let s = match other {
                    Token::LBrace => "{",
                    Token::RBrace => "}",
                    Token::LBracket => "[",
                    Token::RBracket => "]",
                    Token::LParen => "(",
                    Token::RParen => ")",
                    Token::Comma => ",",
                    Token::Semi => ";",
                    Token::Slash => "/",
                    Token::Tilde => "~",
                    Token::Eq => "=",
                    Token::Ne => "!=",
                    Token::Lt => "<",
                    Token::Le => "<=",
                    Token::Gt => ">",
                    Token::Ge => ">=",
                    Token::Bang => "!",
                    Token::AndAnd => "&&",
                    Token::OrOr => "||",
                    Token::Plus => "+",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A lexing error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// A token together with the line it started on (for error reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based line number.
    pub line: usize,
}

/// Tokenizes the input. `#` starts a comment that runs to end of line.
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>, LexError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                out.push(SpannedToken {
                    token: Token::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                out.push(SpannedToken {
                    token: Token::RBrace,
                    line,
                });
                i += 1;
            }
            '[' => {
                out.push(SpannedToken {
                    token: Token::LBracket,
                    line,
                });
                i += 1;
            }
            ']' => {
                out.push(SpannedToken {
                    token: Token::RBracket,
                    line,
                });
                i += 1;
            }
            '(' => {
                out.push(SpannedToken {
                    token: Token::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                out.push(SpannedToken {
                    token: Token::RParen,
                    line,
                });
                i += 1;
            }
            ',' => {
                out.push(SpannedToken {
                    token: Token::Comma,
                    line,
                });
                i += 1;
            }
            ';' => {
                out.push(SpannedToken {
                    token: Token::Semi,
                    line,
                });
                i += 1;
            }
            '/' => {
                out.push(SpannedToken {
                    token: Token::Slash,
                    line,
                });
                i += 1;
            }
            '~' => {
                out.push(SpannedToken {
                    token: Token::Tilde,
                    line,
                });
                i += 1;
            }
            '+' => {
                out.push(SpannedToken {
                    token: Token::Plus,
                    line,
                });
                i += 1;
            }
            '=' => {
                out.push(SpannedToken {
                    token: Token::Eq,
                    line,
                });
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedToken {
                        token: Token::Ne,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(SpannedToken {
                        token: Token::Bang,
                        line,
                    });
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedToken {
                        token: Token::Le,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(SpannedToken {
                        token: Token::Lt,
                        line,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedToken {
                        token: Token::Ge,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(SpannedToken {
                        token: Token::Gt,
                        line,
                    });
                    i += 1;
                }
            }
            '&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    out.push(SpannedToken {
                        token: Token::AndAnd,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "expected `&&`".into(),
                    });
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    out.push(SpannedToken {
                        token: Token::OrOr,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "expected `||`".into(),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                // Lookahead: a dotted quad (number '.' number '.' ...) is an
                // IP address literal.
                if i < bytes.len() && bytes[i] == b'.' {
                    let mut j = i;
                    let mut dots = 0;
                    while j < bytes.len()
                        && ((bytes[j] as char).is_ascii_digit() || bytes[j] == b'.')
                    {
                        if bytes[j] == b'.' {
                            dots += 1;
                        }
                        j += 1;
                    }
                    if dots == 3 {
                        let text = &input[start..j];
                        let addr: std::net::Ipv4Addr = text.parse().map_err(|_| LexError {
                            line,
                            message: format!("invalid IPv4 address `{text}`"),
                        })?;
                        out.push(SpannedToken {
                            token: Token::IpAddr(u32::from(addr)),
                            line,
                        });
                        i = j;
                        continue;
                    }
                }
                let text = &input[start..i];
                let value: u64 = text.parse().map_err(|_| LexError {
                    line,
                    message: format!("invalid number `{text}`"),
                })?;
                out.push(SpannedToken {
                    token: Token::Number(value),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' || ch == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(SpannedToken {
                    token: Token::Ident(input[start..i].to_string()),
                    line,
                });
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input)
            .expect("lexes")
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            toks("{ } [ ] ( ) , ; / ~ = != < <= > >= ! && || +"),
            vec![
                Token::LBrace,
                Token::RBrace,
                Token::LBracket,
                Token::RBracket,
                Token::LParen,
                Token::RParen,
                Token::Comma,
                Token::Semi,
                Token::Slash,
                Token::Tilde,
                Token::Eq,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Bang,
                Token::AndAnd,
                Token::OrOr,
                Token::Plus,
            ]
        );
    }

    #[test]
    fn numbers_and_ip_addresses() {
        assert_eq!(
            toks("65001 10.0.0.1 208.65.152.0/22"),
            vec![
                Token::Number(65001),
                Token::IpAddr(0x0a000001),
                Token::IpAddr(u32::from_be_bytes([208, 65, 152, 0])),
                Token::Slash,
                Token::Number(22),
            ]
        );
    }

    #[test]
    fn identifiers_keep_dots() {
        assert_eq!(
            toks("filter customer_in net.len"),
            vec![
                Token::Ident("filter".into()),
                Token::Ident("customer_in".into()),
                Token::Ident("net.len".into()),
            ]
        );
    }

    #[test]
    fn comments_and_lines_are_tracked() {
        let toks = tokenize("accept; # trailing comment\nreject;").expect("lexes");
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[2].line, 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = tokenize("accept;\n$bad").expect_err("should fail");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unexpected character"));
        assert!(tokenize("a & b").is_err());
        assert!(tokenize("a | b").is_err());
        assert!(tokenize("999999999999999999999999").is_err());
    }
}
