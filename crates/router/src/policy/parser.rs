//! Recursive-descent parser for the filter language.
//!
//! Grammar (simplified BIRD):
//!
//! ```text
//! filter      := "filter" IDENT "{" stmt* "}"
//! stmt        := "if" expr "then" block ("else" block)?
//!              | "accept" ";" | "reject" ";"
//!              | "local_pref" "=" NUMBER ";" | "med" "=" NUMBER ";"
//!              | "prepend" NUMBER ";"
//!              | "add" "community" "(" NUMBER "," NUMBER ")" ";"
//! block       := "{" stmt* "}" | stmt
//! expr        := and_expr ("||" and_expr)*
//! and_expr    := not_expr ("&&" not_expr)*
//! not_expr    := "!" not_expr | primary
//! primary     := "(" expr ")"
//!              | "net" "~" prefix_set
//!              | "community" "~" "(" NUMBER "," NUMBER ")"
//!              | "true" | "false"
//!              | field cmp NUMBER
//! prefix_set  := "[" prefix_pattern ("," prefix_pattern)* "]"
//! prefix_pattern := IP "/" NUMBER ( "+" | "{" NUMBER "," NUMBER "}" )?
//! field       := "source_as" | "neighbor_as" | "path_len" | "med"
//!              | "local_pref" | "origin" | "net.len"
//! cmp         := "=" | "!=" | "<" | "<=" | ">" | ">="
//! ```

use std::fmt;

use dice_bgp::prefix::Ipv4Prefix;

use super::ast::{CmpOp, Expr, Field, FilterDef, PrefixPattern, Stmt};
use super::lexer::{tokenize, LexError, SpannedToken, Token};

/// A parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 when at end of input).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Token-stream cursor shared by the filter parser and the router
/// configuration parser.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    next_branch_id: u32,
}

impl Parser {
    /// Creates a parser over the given source text.
    pub fn new(input: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: tokenize(input)?,
            pos: 0,
            next_branch_id: 0,
        })
    }

    /// Returns true if all tokens have been consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// The current line number, for error messages.
    pub fn line(&self) -> usize {
        self.tokens.get(self.pos).map(|t| t.line).unwrap_or(0)
    }

    /// Peeks at the current token.
    pub fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    /// Consumes and returns the current token.
    pub fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Creates an error at the current position.
    pub fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    /// Consumes the expected token or fails.
    pub fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected `{expected}`, found `{t}`"))),
            None => Err(self.error(format!("expected `{expected}`, found end of input"))),
        }
    }

    /// Consumes an identifier with the exact given text.
    pub fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected `{kw}`, found `{t}`"))),
            None => Err(self.error(format!("expected `{kw}`, found end of input"))),
        }
    }

    /// Returns true (and consumes) if the current token is the identifier.
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Returns true (and consumes) if the current token equals `t`.
    pub fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes an identifier.
    pub fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => Err(self.error(format!("expected identifier, found `{t}`"))),
            None => Err(self.error("expected identifier, found end of input")),
        }
    }

    /// Consumes a number.
    pub fn expect_number(&mut self) -> Result<u64, ParseError> {
        match self.advance() {
            Some(Token::Number(n)) => Ok(n),
            Some(t) => Err(self.error(format!("expected number, found `{t}`"))),
            None => Err(self.error("expected number, found end of input")),
        }
    }

    /// Consumes an IPv4 address literal.
    pub fn expect_ip(&mut self) -> Result<u32, ParseError> {
        match self.advance() {
            Some(Token::IpAddr(a)) => Ok(a),
            Some(t) => Err(self.error(format!("expected IPv4 address, found `{t}`"))),
            None => Err(self.error("expected IPv4 address, found end of input")),
        }
    }

    /// Consumes a `A.B.C.D/len` prefix.
    pub fn expect_prefix(&mut self) -> Result<Ipv4Prefix, ParseError> {
        let addr = self.expect_ip()?;
        self.expect(&Token::Slash)?;
        let len = self.expect_number()?;
        Ipv4Prefix::new(addr, len as u8).map_err(|e| self.error(e.to_string()))
    }

    /// Parses a complete `filter name { ... }` definition.
    pub fn parse_filter(&mut self) -> Result<FilterDef, ParseError> {
        self.expect_keyword("filter")?;
        let name = self.expect_ident()?;
        self.next_branch_id = 0;
        self.expect(&Token::LBrace)?;
        let body = self.parse_stmts_until_rbrace()?;
        Ok(FilterDef { name, body })
    }

    fn parse_stmts_until_rbrace(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            if self.eat(&Token::RBrace) {
                return Ok(out);
            }
            if self.at_end() {
                return Err(self.error("unexpected end of input inside block"));
            }
            out.push(self.parse_stmt()?);
        }
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.eat(&Token::LBrace) {
            self.parse_stmts_until_rbrace()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_keyword("if") {
            let id = self.next_branch_id;
            self.next_branch_id += 1;
            let cond = self.parse_expr()?;
            self.expect_keyword("then")?;
            let then_branch = self.parse_block()?;
            let else_branch = if self.eat_keyword("else") {
                self.parse_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                id,
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.eat_keyword("accept") {
            self.expect(&Token::Semi)?;
            return Ok(Stmt::Accept);
        }
        if self.eat_keyword("reject") {
            self.expect(&Token::Semi)?;
            return Ok(Stmt::Reject);
        }
        if self.eat_keyword("local_pref") {
            self.expect(&Token::Eq)?;
            let v = self.expect_number()?;
            self.expect(&Token::Semi)?;
            return Ok(Stmt::SetLocalPref(v));
        }
        if self.eat_keyword("med") {
            self.expect(&Token::Eq)?;
            let v = self.expect_number()?;
            self.expect(&Token::Semi)?;
            return Ok(Stmt::SetMed(v));
        }
        if self.eat_keyword("prepend") {
            let v = self.expect_number()?;
            self.expect(&Token::Semi)?;
            return Ok(Stmt::Prepend(v));
        }
        if self.eat_keyword("add") {
            self.expect_keyword("community")?;
            self.expect(&Token::LParen)?;
            let a = self.expect_number()?;
            self.expect(&Token::Comma)?;
            let b = self.expect_number()?;
            self.expect(&Token::RParen)?;
            self.expect(&Token::Semi)?;
            return Ok(Stmt::AddCommunity(a as u16, b as u16));
        }
        match self.peek() {
            Some(t) => Err(self.error(format!("expected statement, found `{t}`"))),
            None => Err(self.error("expected statement, found end of input")),
        }
    }

    /// Parses a condition expression.
    pub fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and_expr()?;
        while self.eat(&Token::OrOr) {
            let rhs = self.parse_and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_not_expr()?;
        while self.eat(&Token::AndAnd) {
            let rhs = self.parse_not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Bang) {
            let inner = self.parse_not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::LParen) {
            let e = self.parse_expr()?;
            self.expect(&Token::RParen)?;
            return Ok(e);
        }
        if self.eat_keyword("true") {
            return Ok(Expr::True);
        }
        if self.eat_keyword("false") {
            return Ok(Expr::False);
        }
        if self.eat_keyword("net") {
            self.expect(&Token::Tilde)?;
            let patterns = self.parse_prefix_set()?;
            return Ok(Expr::NetMatch(patterns));
        }
        if self.eat_keyword("community") {
            self.expect(&Token::Tilde)?;
            self.expect(&Token::LParen)?;
            let a = self.expect_number()?;
            self.expect(&Token::Comma)?;
            let b = self.expect_number()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::CommunityMatch(a as u16, b as u16));
        }
        // field cmp number
        let ident = self.expect_ident()?;
        let field = match ident.as_str() {
            "source_as" => Field::SourceAs,
            "neighbor_as" => Field::NeighborAs,
            "path_len" => Field::PathLen,
            "med" => Field::Med,
            "local_pref" => Field::LocalPref,
            "origin" => Field::OriginCode,
            "net.len" => Field::PrefixLen,
            other => return Err(self.error(format!("unknown field `{other}`"))),
        };
        let op = match self.advance() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            Some(t) => return Err(self.error(format!("expected comparison operator, found `{t}`"))),
            None => return Err(self.error("expected comparison operator, found end of input")),
        };
        let value = self.expect_number()?;
        Ok(Expr::FieldCmp { field, op, value })
    }

    fn parse_prefix_set(&mut self) -> Result<Vec<PrefixPattern>, ParseError> {
        self.expect(&Token::LBracket)?;
        let mut patterns = Vec::new();
        loop {
            let prefix = self.expect_prefix()?;
            let pattern = if self.eat(&Token::Plus) {
                PrefixPattern::or_longer(prefix)
            } else if self.eat(&Token::LBrace) {
                let min = self.expect_number()? as u8;
                self.expect(&Token::Comma)?;
                let max = self.expect_number()? as u8;
                self.expect(&Token::RBrace)?;
                if min > max || max > 32 {
                    return Err(self.error(format!("invalid prefix length range {{{min},{max}}}")));
                }
                PrefixPattern::with_range(prefix, min, max)
            } else {
                PrefixPattern::exact(prefix)
            };
            patterns.push(pattern);
            if self.eat(&Token::RBracket) {
                return Ok(patterns);
            }
            self.expect(&Token::Comma)?;
        }
    }
}

/// Parses a single filter definition from source text.
pub fn parse_filter(input: &str) -> Result<FilterDef, ParseError> {
    let mut parser = Parser::new(input)?;
    let filter = parser.parse_filter()?;
    if !parser.at_end() {
        return Err(parser.error("trailing input after filter definition"));
    }
    Ok(filter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_customer_filter() {
        let src = r#"
            # Best-practice customer import filter at the Provider.
            filter customer_in {
                if net ~ [ 208.65.152.0/22{22,24}, 198.51.100.0/24 ] then {
                    local_pref = 200;
                    accept;
                }
                reject;
            }
        "#;
        let f = parse_filter(src).expect("parses");
        assert_eq!(f.name, "customer_in");
        assert_eq!(f.body.len(), 2);
        assert_eq!(f.branch_count(), 1);
        match &f.body[0] {
            Stmt::If {
                cond: Expr::NetMatch(pats),
                then_branch,
                else_branch,
                ..
            } => {
                assert_eq!(pats.len(), 2);
                assert_eq!(pats[0].min_len, 22);
                assert_eq!(pats[0].max_len, 24);
                assert_eq!(pats[1].min_len, 24);
                assert_eq!(then_branch.len(), 2);
                assert!(else_branch.is_empty());
            }
            other => panic!("unexpected statement {other:?}"),
        }
        assert_eq!(f.body[1], Stmt::Reject);
    }

    #[test]
    fn parses_nested_conditions_and_operators() {
        let src = r#"
            filter complex {
                if source_as = 17557 && ( path_len > 3 || med >= 100 ) then {
                    reject;
                } else {
                    if ! ( neighbor_as != 3491 ) then accept;
                }
                if community ~ (65000, 666) then reject;
                if net.len > 24 then reject;
                accept;
            }
        "#;
        let f = parse_filter(src).expect("parses");
        assert_eq!(f.branch_count(), 4);
    }

    #[test]
    fn parses_all_actions() {
        let src = r#"
            filter actions {
                local_pref = 300;
                med = 10;
                prepend 2;
                add community (65000, 120);
                accept;
            }
        "#;
        let f = parse_filter(src).expect("parses");
        assert_eq!(
            f.body,
            vec![
                Stmt::SetLocalPref(300),
                Stmt::SetMed(10),
                Stmt::Prepend(2),
                Stmt::AddCommunity(65000, 120),
                Stmt::Accept,
            ]
        );
    }

    #[test]
    fn or_longer_patterns() {
        let f = parse_filter("filter f { if net ~ [ 10.0.0.0/8+ ] then accept; reject; }")
            .expect("parses");
        match &f.body[0] {
            Stmt::If {
                cond: Expr::NetMatch(pats),
                ..
            } => {
                assert_eq!(pats[0].min_len, 8);
                assert_eq!(pats[0].max_len, 32);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn branch_ids_are_sequential() {
        let src =
            "filter f { if true then { if false then accept; } if true then reject; accept; }";
        let f = parse_filter(src).expect("parses");
        let mut ids = Vec::new();
        fn collect(stmts: &[Stmt], ids: &mut Vec<u32>) {
            for s in stmts {
                if let Stmt::If {
                    id,
                    then_branch,
                    else_branch,
                    ..
                } = s
                {
                    ids.push(*id);
                    collect(then_branch, ids);
                    collect(else_branch, ids);
                }
            }
        }
        collect(&f.body, &mut ids);
        ids.sort();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn parse_errors_are_reported_with_lines() {
        let err = parse_filter("filter f {\n  bogus;\n}").expect_err("should fail");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("expected statement"));
        assert!(parse_filter("filter f { accept; } trailing").is_err());
        assert!(parse_filter("filter f { if net ~ [ 10.0.0.0/8{24,8} ] then accept; }").is_err());
        assert!(parse_filter("filter f { if unknown_field = 3 then accept; }").is_err());
        assert!(parse_filter("filter f { accept; ").is_err());
    }
}
