//! The routing policy (filter) language: AST, lexer, parser and the
//! concolic-aware interpreter.

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{CmpOp, Expr, Field, FilterDef, PrefixPattern, Stmt};
pub use eval::{
    decode_community, encode_community, eval_expr, eval_filter, ArmTrace, FilterOutcome,
    FilterVerdict, RouteView,
};
pub use lexer::{tokenize, LexError, Token};
pub use parser::{parse_filter, ParseError, Parser};
