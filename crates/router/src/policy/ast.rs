//! Abstract syntax of the routing policy (filter) language.
//!
//! The language is a small BIRD-like filter language: named filters made of
//! `if`/`accept`/`reject`/attribute-setting statements. Filters drive both
//! import and export processing, and — critically for DiCE — their
//! interpretation over symbolic route fields records constraints, so that
//! the explored execution paths cover *configuration* behaviour as well as
//! code behaviour (paper §3.2).

use std::fmt;

use dice_bgp::prefix::Ipv4Prefix;

/// A named filter definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterDef {
    /// Filter name, referenced from `neighbor { import filter <name>; }`.
    pub name: String,
    /// Statement list executed top to bottom.
    pub body: Vec<Stmt>,
}

impl FilterDef {
    /// A filter that accepts every route unchanged.
    pub fn accept_all(name: impl Into<String>) -> Self {
        FilterDef {
            name: name.into(),
            body: vec![Stmt::Accept],
        }
    }

    /// A filter that rejects every route.
    pub fn reject_all(name: impl Into<String>) -> Self {
        FilterDef {
            name: name.into(),
            body: vec![Stmt::Reject],
        }
    }

    /// Number of `if` statements (branch sites) in the filter.
    pub fn branch_count(&self) -> usize {
        self.arm_ids().len()
    }

    /// The branch-site label of arm `id` within this filter.
    ///
    /// Labels are stable across runs and processes: they hash to the
    /// [`dice_symexec::SiteId`](https://docs.rs) equivalent the engine
    /// schedules, so a filter arm is the same exploration site no matter
    /// which router, round or worker evaluates it.
    pub fn site_label(&self, id: u32) -> String {
        format!("filter:{}:if{}", self.name, id)
    }

    /// Arm identifiers in pre-order (the order the parser assigns them).
    pub fn arm_ids(&self) -> Vec<u32> {
        fn walk(stmts: &[Stmt], out: &mut Vec<u32>) {
            for s in stmts {
                if let Stmt::If {
                    id,
                    then_branch,
                    else_branch,
                    ..
                } = s
                {
                    out.push(*id);
                    walk(then_branch, out);
                    walk(else_branch, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }

    /// Every addressable branch site of this filter as `(arm id, label)`
    /// pairs, in pre-order. This is the registry the engine declares before
    /// evaluation so that arms no execution has ever reached still count in
    /// the policy-coverage denominator.
    pub fn sites(&self) -> Vec<(u32, String)> {
        self.arm_ids()
            .into_iter()
            .map(|id| (id, self.site_label(id)))
            .collect()
    }

    /// Renumbers every `if` arm in pre-order starting from 0 — the exact
    /// numbering [`crate::policy::parse_filter`] produces. Hand-built ASTs
    /// should call this so their site IDs match what the same filter would
    /// get when parsed from text.
    pub fn assign_arm_ids(&mut self) {
        fn walk(stmts: &mut [Stmt], next: &mut u32) {
            for s in stmts {
                if let Stmt::If {
                    id,
                    then_branch,
                    else_branch,
                    ..
                } = s
                {
                    *id = *next;
                    *next += 1;
                    walk(then_branch, next);
                    walk(else_branch, next);
                }
            }
        }
        let mut next = 0;
        walk(&mut self.body, &mut next);
    }
}

impl fmt::Display for FilterDef {
    /// Renders the filter in the concrete syntax the parser accepts, so
    /// `parse_filter(&def.to_string())` round-trips: same structure and —
    /// when the arm IDs are in pre-order, as [`FilterDef::assign_arm_ids`]
    /// and the parser both produce — the same site IDs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "filter {} {{", self.name)?;
        for stmt in &self.body {
            write_stmt(f, stmt, 1)?;
        }
        write!(f, "}}")
    }
}

fn write_stmt(f: &mut fmt::Formatter<'_>, stmt: &Stmt, depth: usize) -> fmt::Result {
    let pad = "    ".repeat(depth);
    match stmt {
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            writeln!(f, "{pad}if {cond} then {{")?;
            for s in then_branch {
                write_stmt(f, s, depth + 1)?;
            }
            if else_branch.is_empty() {
                writeln!(f, "{pad}}}")
            } else {
                writeln!(f, "{pad}}} else {{")?;
                for s in else_branch {
                    write_stmt(f, s, depth + 1)?;
                }
                writeln!(f, "{pad}}}")
            }
        }
        Stmt::Accept => writeln!(f, "{pad}accept;"),
        Stmt::Reject => writeln!(f, "{pad}reject;"),
        Stmt::SetLocalPref(v) => writeln!(f, "{pad}local_pref = {v};"),
        Stmt::SetMed(v) => writeln!(f, "{pad}med = {v};"),
        Stmt::Prepend(n) => writeln!(f, "{pad}prepend {n};"),
        Stmt::AddCommunity(a, b) => writeln!(f, "{pad}add community ({a}, {b});"),
    }
}

/// A filter statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Conditional execution; `id` identifies the branch site.
    If {
        /// Branch-site identifier, unique within the filter.
        id: u32,
        /// The condition.
        cond: Expr,
        /// Statements executed when the condition holds.
        then_branch: Vec<Stmt>,
        /// Statements executed otherwise.
        else_branch: Vec<Stmt>,
    },
    /// Accept the route (terminates the filter).
    Accept,
    /// Reject the route (terminates the filter).
    Reject,
    /// Set LOCAL_PREF.
    SetLocalPref(u64),
    /// Set MED.
    SetMed(u64),
    /// Prepend the local AS the given number of times on export.
    Prepend(u64),
    /// Attach a community.
    AddCommunity(u16, u16),
}

/// Route fields that conditions may test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// The origin AS of the route (last AS on the path).
    SourceAs,
    /// The neighboring AS (first AS on the path).
    NeighborAs,
    /// AS-path length.
    PathLen,
    /// MULTI_EXIT_DISC.
    Med,
    /// LOCAL_PREF.
    LocalPref,
    /// ORIGIN code (0 = IGP, 1 = EGP, 2 = incomplete).
    OriginCode,
    /// Prefix length of the announced network.
    PrefixLen,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

impl fmt::Display for PrefixPattern {
    /// Renders in prefix-set syntax: `10.0.0.0/8`, `10.0.0.0/8+` or
    /// `10.0.0.0/8{9,24}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.prefix)?;
        if self.min_len == self.prefix.len() && self.max_len == 32 && self.prefix.len() != 32 {
            write!(f, "+")
        } else if self.min_len == self.prefix.len() && self.max_len == self.prefix.len() {
            Ok(())
        } else {
            write!(f, "{{{},{}}}", self.min_len, self.max_len)
        }
    }
}

impl fmt::Display for Expr {
    /// Renders in the parser's expression syntax. Compound subexpressions
    /// are fully parenthesised, so the printed text re-parses to exactly
    /// the same tree (parentheses are a `primary` production).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::NetMatch(patterns) => {
                write!(f, "net ~ [ ")?;
                for (i, p) in patterns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, " ]")
            }
            Expr::FieldCmp { field, op, value } => write!(f, "{field} {op} {value}"),
            Expr::CommunityMatch(a, b) => write!(f, "community ~ ({a}, {b})"),
            Expr::Not(e) => write!(f, "!({e})"),
            Expr::And(a, b) => write!(f, "({a} && {b})"),
            Expr::Or(a, b) => write!(f, "({a} || {b})"),
            Expr::True => write!(f, "true"),
            Expr::False => write!(f, "false"),
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Field::SourceAs => "source_as",
            Field::NeighborAs => "neighbor_as",
            Field::PathLen => "path_len",
            Field::Med => "med",
            Field::LocalPref => "local_pref",
            Field::OriginCode => "origin",
            Field::PrefixLen => "net.len",
        };
        f.write_str(s)
    }
}

/// Comparison operators in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// One entry of a prefix set: a prefix plus the range of lengths it admits.
///
/// `10.0.0.0/8` admits only the /8; `10.0.0.0/8+` admits the /8 and
/// anything more specific; `10.0.0.0/8{9,24}` admits covered prefixes whose
/// length is between 9 and 24.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixPattern {
    /// The covering prefix.
    pub prefix: Ipv4Prefix,
    /// Minimum admitted prefix length.
    pub min_len: u8,
    /// Maximum admitted prefix length.
    pub max_len: u8,
}

impl PrefixPattern {
    /// An exact-match pattern.
    pub fn exact(prefix: Ipv4Prefix) -> Self {
        PrefixPattern {
            prefix,
            min_len: prefix.len(),
            max_len: prefix.len(),
        }
    }

    /// A pattern matching the prefix or anything more specific.
    pub fn or_longer(prefix: Ipv4Prefix) -> Self {
        PrefixPattern {
            prefix,
            min_len: prefix.len(),
            max_len: 32,
        }
    }

    /// A pattern with an explicit length range.
    pub fn with_range(prefix: Ipv4Prefix, min_len: u8, max_len: u8) -> Self {
        PrefixPattern {
            prefix,
            min_len,
            max_len,
        }
    }

    /// Concrete membership test (used by tests and the concrete fast path).
    pub fn matches(&self, candidate: &Ipv4Prefix) -> bool {
        self.prefix.contains(candidate)
            && candidate.len() >= self.min_len
            && candidate.len() <= self.max_len
    }
}

/// A filter condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// `net ~ [ ... ]`: the announced prefix matches one of the patterns.
    NetMatch(Vec<PrefixPattern>),
    /// `field <op> value`.
    FieldCmp {
        /// The tested field.
        field: Field,
        /// The comparison operator.
        op: CmpOp,
        /// The constant to compare against.
        value: u64,
    },
    /// `community ~ (asn, value)`.
    CommunityMatch(u16, u16),
    /// Logical negation.
    Not(Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Constant true.
    True,
    /// Constant false.
    False,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().expect("valid prefix")
    }

    #[test]
    fn prefix_pattern_matching() {
        let exact = PrefixPattern::exact(p("10.0.0.0/8"));
        assert!(exact.matches(&p("10.0.0.0/8")));
        assert!(!exact.matches(&p("10.1.0.0/16")));

        let longer = PrefixPattern::or_longer(p("10.0.0.0/8"));
        assert!(longer.matches(&p("10.0.0.0/8")));
        assert!(longer.matches(&p("10.1.0.0/16")));
        assert!(!longer.matches(&p("11.0.0.0/8")));

        let ranged = PrefixPattern::with_range(p("208.65.152.0/22"), 22, 24);
        assert!(ranged.matches(&p("208.65.152.0/22")));
        assert!(ranged.matches(&p("208.65.153.0/24")));
        assert!(!ranged.matches(&p("208.65.153.0/25")));
        assert!(!ranged.matches(&p("208.65.0.0/16")));
    }

    #[test]
    fn branch_count_counts_nested_ifs() {
        let filter = FilterDef {
            name: "f".into(),
            body: vec![
                Stmt::If {
                    id: 0,
                    cond: Expr::True,
                    then_branch: vec![Stmt::If {
                        id: 1,
                        cond: Expr::False,
                        then_branch: vec![Stmt::Accept],
                        else_branch: vec![],
                    }],
                    else_branch: vec![Stmt::Reject],
                },
                Stmt::Accept,
            ],
        };
        assert_eq!(filter.branch_count(), 2);
        assert_eq!(FilterDef::accept_all("a").branch_count(), 0);
        assert_eq!(FilterDef::reject_all("r").body, vec![Stmt::Reject]);
    }

    #[test]
    fn field_display_names() {
        assert_eq!(Field::SourceAs.to_string(), "source_as");
        assert_eq!(Field::PrefixLen.to_string(), "net.len");
    }
}
