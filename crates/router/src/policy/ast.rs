//! Abstract syntax of the routing policy (filter) language.
//!
//! The language is a small BIRD-like filter language: named filters made of
//! `if`/`accept`/`reject`/attribute-setting statements. Filters drive both
//! import and export processing, and — critically for DiCE — their
//! interpretation over symbolic route fields records constraints, so that
//! the explored execution paths cover *configuration* behaviour as well as
//! code behaviour (paper §3.2).

use std::fmt;

use dice_bgp::prefix::Ipv4Prefix;

/// A named filter definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterDef {
    /// Filter name, referenced from `neighbor { import filter <name>; }`.
    pub name: String,
    /// Statement list executed top to bottom.
    pub body: Vec<Stmt>,
}

impl FilterDef {
    /// A filter that accepts every route unchanged.
    pub fn accept_all(name: impl Into<String>) -> Self {
        FilterDef {
            name: name.into(),
            body: vec![Stmt::Accept],
        }
    }

    /// A filter that rejects every route.
    pub fn reject_all(name: impl Into<String>) -> Self {
        FilterDef {
            name: name.into(),
            body: vec![Stmt::Reject],
        }
    }

    /// Number of `if` statements (branch sites) in the filter.
    pub fn branch_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If {
                        then_branch,
                        else_branch,
                        ..
                    } => 1 + count(then_branch) + count(else_branch),
                    _ => 0,
                })
                .sum()
        }
        count(&self.body)
    }
}

/// A filter statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Conditional execution; `id` identifies the branch site.
    If {
        /// Branch-site identifier, unique within the filter.
        id: u32,
        /// The condition.
        cond: Expr,
        /// Statements executed when the condition holds.
        then_branch: Vec<Stmt>,
        /// Statements executed otherwise.
        else_branch: Vec<Stmt>,
    },
    /// Accept the route (terminates the filter).
    Accept,
    /// Reject the route (terminates the filter).
    Reject,
    /// Set LOCAL_PREF.
    SetLocalPref(u64),
    /// Set MED.
    SetMed(u64),
    /// Prepend the local AS the given number of times on export.
    Prepend(u64),
    /// Attach a community.
    AddCommunity(u16, u16),
}

/// Route fields that conditions may test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// The origin AS of the route (last AS on the path).
    SourceAs,
    /// The neighboring AS (first AS on the path).
    NeighborAs,
    /// AS-path length.
    PathLen,
    /// MULTI_EXIT_DISC.
    Med,
    /// LOCAL_PREF.
    LocalPref,
    /// ORIGIN code (0 = IGP, 1 = EGP, 2 = incomplete).
    OriginCode,
    /// Prefix length of the announced network.
    PrefixLen,
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Field::SourceAs => "source_as",
            Field::NeighborAs => "neighbor_as",
            Field::PathLen => "path_len",
            Field::Med => "med",
            Field::LocalPref => "local_pref",
            Field::OriginCode => "origin",
            Field::PrefixLen => "net.len",
        };
        f.write_str(s)
    }
}

/// Comparison operators in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// One entry of a prefix set: a prefix plus the range of lengths it admits.
///
/// `10.0.0.0/8` admits only the /8; `10.0.0.0/8+` admits the /8 and
/// anything more specific; `10.0.0.0/8{9,24}` admits covered prefixes whose
/// length is between 9 and 24.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixPattern {
    /// The covering prefix.
    pub prefix: Ipv4Prefix,
    /// Minimum admitted prefix length.
    pub min_len: u8,
    /// Maximum admitted prefix length.
    pub max_len: u8,
}

impl PrefixPattern {
    /// An exact-match pattern.
    pub fn exact(prefix: Ipv4Prefix) -> Self {
        PrefixPattern {
            prefix,
            min_len: prefix.len(),
            max_len: prefix.len(),
        }
    }

    /// A pattern matching the prefix or anything more specific.
    pub fn or_longer(prefix: Ipv4Prefix) -> Self {
        PrefixPattern {
            prefix,
            min_len: prefix.len(),
            max_len: 32,
        }
    }

    /// A pattern with an explicit length range.
    pub fn with_range(prefix: Ipv4Prefix, min_len: u8, max_len: u8) -> Self {
        PrefixPattern {
            prefix,
            min_len,
            max_len,
        }
    }

    /// Concrete membership test (used by tests and the concrete fast path).
    pub fn matches(&self, candidate: &Ipv4Prefix) -> bool {
        self.prefix.contains(candidate)
            && candidate.len() >= self.min_len
            && candidate.len() <= self.max_len
    }
}

/// A filter condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// `net ~ [ ... ]`: the announced prefix matches one of the patterns.
    NetMatch(Vec<PrefixPattern>),
    /// `field <op> value`.
    FieldCmp {
        /// The tested field.
        field: Field,
        /// The comparison operator.
        op: CmpOp,
        /// The constant to compare against.
        value: u64,
    },
    /// `community ~ (asn, value)`.
    CommunityMatch(u16, u16),
    /// Logical negation.
    Not(Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Constant true.
    True,
    /// Constant false.
    False,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().expect("valid prefix")
    }

    #[test]
    fn prefix_pattern_matching() {
        let exact = PrefixPattern::exact(p("10.0.0.0/8"));
        assert!(exact.matches(&p("10.0.0.0/8")));
        assert!(!exact.matches(&p("10.1.0.0/16")));

        let longer = PrefixPattern::or_longer(p("10.0.0.0/8"));
        assert!(longer.matches(&p("10.0.0.0/8")));
        assert!(longer.matches(&p("10.1.0.0/16")));
        assert!(!longer.matches(&p("11.0.0.0/8")));

        let ranged = PrefixPattern::with_range(p("208.65.152.0/22"), 22, 24);
        assert!(ranged.matches(&p("208.65.152.0/22")));
        assert!(ranged.matches(&p("208.65.153.0/24")));
        assert!(!ranged.matches(&p("208.65.153.0/25")));
        assert!(!ranged.matches(&p("208.65.0.0/16")));
    }

    #[test]
    fn branch_count_counts_nested_ifs() {
        let filter = FilterDef {
            name: "f".into(),
            body: vec![
                Stmt::If {
                    id: 0,
                    cond: Expr::True,
                    then_branch: vec![Stmt::If {
                        id: 1,
                        cond: Expr::False,
                        then_branch: vec![Stmt::Accept],
                        else_branch: vec![],
                    }],
                    else_branch: vec![Stmt::Reject],
                },
                Stmt::Accept,
            ],
        };
        assert_eq!(filter.branch_count(), 2);
        assert_eq!(FilterDef::accept_all("a").branch_count(), 0);
        assert_eq!(FilterDef::reject_all("r").body, vec![Stmt::Reject]);
    }

    #[test]
    fn field_display_names() {
        assert_eq!(Field::SourceAs.to_string(), "source_as");
        assert_eq!(Field::PrefixLen.to_string(), "net.len");
    }
}
