//! The BGP decision process (RFC 4271 §9.1.2), as implemented by BIRD.
//!
//! Given the candidate routes for a prefix (one per peer in the Adj-RIB-In
//! that survived import filtering), the decision process picks the single
//! best route installed in the Loc-RIB and advertised onward.

use std::cmp::Ordering;

use dice_bgp::route::Route;

/// The reason one route was preferred over another, for operator-facing
/// explanations and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionReason {
    /// Higher LOCAL_PREF wins.
    LocalPref,
    /// Shorter AS path wins.
    AsPathLength,
    /// Lower ORIGIN (IGP < EGP < incomplete) wins.
    Origin,
    /// Lower MED wins (compared only between routes from the same
    /// neighboring AS).
    Med,
    /// Locally-originated routes beat learned routes.
    LocalOrigination,
    /// Lower peer router id wins (final tie breaker).
    RouterId,
    /// The routes compare equal on every criterion.
    Equal,
}

/// Compares two candidate routes; `Ordering::Greater` means `a` is better.
pub fn compare(a: &Route, b: &Route) -> (Ordering, DecisionReason) {
    // 1. Highest LOCAL_PREF.
    let lp = a
        .attrs
        .effective_local_pref()
        .cmp(&b.attrs.effective_local_pref());
    if lp != Ordering::Equal {
        return (lp, DecisionReason::LocalPref);
    }
    // 2. Locally-originated routes are preferred.
    let local = (!a.is_learned()).cmp(&!b.is_learned());
    if local != Ordering::Equal {
        return (local, DecisionReason::LocalOrigination);
    }
    // 3. Shortest AS path.
    let len = b.attrs.as_path.length().cmp(&a.attrs.as_path.length());
    if len != Ordering::Equal {
        return (len, DecisionReason::AsPathLength);
    }
    // 4. Lowest ORIGIN code.
    let origin = b.attrs.origin.code().cmp(&a.attrs.origin.code());
    if origin != Ordering::Equal {
        return (origin, DecisionReason::Origin);
    }
    // 5. Lowest MED, but only when the neighbor AS matches.
    if a.attrs.as_path.neighbor_as().is_some()
        && a.attrs.as_path.neighbor_as() == b.attrs.as_path.neighbor_as()
    {
        let med = b.attrs.effective_med().cmp(&a.attrs.effective_med());
        if med != Ordering::Equal {
            return (med, DecisionReason::Med);
        }
    }
    // 6. Lowest peer router id.
    let rid = b.peer_router_id.cmp(&a.peer_router_id);
    if rid != Ordering::Equal {
        return (rid, DecisionReason::RouterId);
    }
    (Ordering::Equal, DecisionReason::Equal)
}

/// Returns true if `candidate` is strictly better than `current`.
pub fn is_better(candidate: &Route, current: &Route) -> bool {
    compare(candidate, current).0 == Ordering::Greater
}

/// Selects the best route among candidates, returning its index.
pub fn select_best(candidates: &[Route]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, r) in candidates.iter().enumerate() {
        match best {
            None => best = Some(i),
            Some(b) => {
                if compare(r, &candidates[b]).0 == Ordering::Greater {
                    best = Some(i);
                }
            }
        }
    }
    best
}

/// Selects the best route from an iterator of borrowed candidates without
/// materializing them (ties keep the earliest candidate, like
/// [`select_best`]). This is the allocation-free path the RIB decision
/// process runs on every announce/withdraw.
pub fn best_of<'a, I>(candidates: I) -> Option<&'a Route>
where
    I: IntoIterator<Item = &'a Route>,
{
    let mut best: Option<&'a Route> = None;
    for r in candidates {
        match best {
            None => best = Some(r),
            Some(b) => {
                if compare(r, b).0 == Ordering::Greater {
                    best = Some(r);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::attributes::{Origin, RouteAttrs};
    use dice_bgp::prefix::Ipv4Prefix;
    use dice_bgp::route::PeerId;
    use dice_bgp::AsPath;
    use std::net::Ipv4Addr;

    fn prefix() -> Ipv4Prefix {
        "203.0.113.0/24".parse().expect("valid")
    }

    fn route(peer: u32, path: &[u32]) -> Route {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence(path.iter().copied());
        attrs.next_hop = Ipv4Addr::new(10, 0, 0, peer as u8);
        Route::new(prefix(), attrs, PeerId(peer), peer)
    }

    #[test]
    fn local_pref_dominates() {
        let mut a = route(1, &[100, 200, 300]);
        a.attrs.local_pref = Some(200);
        let b = route(2, &[400]);
        let (ord, reason) = compare(&a, &b);
        assert_eq!(ord, Ordering::Greater);
        assert_eq!(reason, DecisionReason::LocalPref);
        assert!(is_better(&a, &b));
    }

    #[test]
    fn shorter_as_path_wins() {
        let a = route(1, &[100]);
        let b = route(2, &[200, 300]);
        let (ord, reason) = compare(&a, &b);
        assert_eq!(ord, Ordering::Greater);
        assert_eq!(reason, DecisionReason::AsPathLength);
    }

    #[test]
    fn origin_breaks_path_length_ties() {
        let mut a = route(1, &[100]);
        a.attrs.origin = Origin::Igp;
        let mut b = route(2, &[200]);
        b.attrs.origin = Origin::Incomplete;
        let (ord, reason) = compare(&a, &b);
        assert_eq!(ord, Ordering::Greater);
        assert_eq!(reason, DecisionReason::Origin);
    }

    #[test]
    fn med_only_compared_within_same_neighbor_as() {
        // Same neighbor AS: lower MED wins.
        let mut a = route(1, &[100, 300]);
        a.attrs.med = Some(10);
        let mut b = route(2, &[100, 400]);
        b.attrs.med = Some(50);
        let (ord, reason) = compare(&a, &b);
        assert_eq!(ord, Ordering::Greater);
        assert_eq!(reason, DecisionReason::Med);

        // Different neighbor AS: MED is skipped, router id decides.
        let mut c = route(1, &[100, 300]);
        c.attrs.med = Some(500);
        let mut d = route(2, &[200, 400]);
        d.attrs.med = Some(1);
        let (_, reason) = compare(&c, &d);
        assert_eq!(reason, DecisionReason::RouterId);
    }

    #[test]
    fn locally_originated_beats_learned() {
        let learned = route(1, &[100]);
        let local = Route::local(prefix(), RouteAttrs::default());
        let (ord, reason) = compare(&local, &learned);
        assert_eq!(ord, Ordering::Greater);
        assert_eq!(reason, DecisionReason::LocalOrigination);
    }

    #[test]
    fn router_id_is_final_tiebreak() {
        let a = route(1, &[100, 200]);
        let b = route(2, &[300, 400]);
        let (ord, reason) = compare(&a, &b);
        assert_eq!(reason, DecisionReason::RouterId);
        assert_eq!(ord, Ordering::Greater); // Lower router id (1) wins.
        let (ord2, reason2) = compare(&a, &a.clone());
        assert_eq!(ord2, Ordering::Equal);
        assert_eq!(reason2, DecisionReason::Equal);
    }

    #[test]
    fn select_best_scans_all_candidates() {
        let mut best = route(3, &[100]);
        best.attrs.local_pref = Some(300);
        let candidates = vec![route(1, &[100, 200]), route(2, &[100]), best.clone()];
        assert_eq!(select_best(&candidates), Some(2));
        assert_eq!(select_best(&[]), None);
    }

    #[test]
    fn best_of_agrees_with_select_best() {
        let mut preferred = route(3, &[100]);
        preferred.attrs.local_pref = Some(300);
        let candidates = vec![route(1, &[100, 200]), route(2, &[100]), preferred];
        let by_index = select_best(&candidates).map(|i| &candidates[i]);
        assert_eq!(best_of(candidates.iter()), by_index);
        assert_eq!(best_of(std::iter::empty()), None);
        // Ties keep the earliest candidate in both selectors.
        let tied = vec![route(1, &[100]), route(1, &[200])];
        assert_eq!(
            best_of(tied.iter()).map(|r| r.peer_router_id),
            select_best(&tied).map(|i| tied[i].peer_router_id)
        );
    }
}
