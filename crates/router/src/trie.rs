//! A binary radix trie over IPv4 prefixes.
//!
//! The trie backs the routing tables: exact-match insertion/removal per
//! prefix plus longest-prefix match for forwarding lookups and covering-
//! prefix queries (used by the hijack checker to find the route an
//! exploratory announcement would override).

use dice_bgp::prefix::Ipv4Prefix;

/// A node in the binary trie.
#[derive(Debug, Clone)]
struct Node<T> {
    value: Option<T>,
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// A map from IPv4 prefixes to values with longest-prefix-match queries.
///
/// # Examples
///
/// ```
/// use dice_router::trie::PrefixTrie;
/// use dice_bgp::prefix::Ipv4Prefix;
///
/// let mut trie = PrefixTrie::new();
/// trie.insert("10.0.0.0/8".parse().unwrap(), "coarse");
/// trie.insert("10.1.0.0/16".parse().unwrap(), "fine");
/// let (p, v) = trie.longest_match_ip(0x0a01_0203).unwrap();
/// assert_eq!(p.to_string(), "10.1.0.0/16");
/// assert_eq!(*v, "fine");
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        PrefixTrie {
            root: Node::default(),
            len: 0,
        }
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if the trie stores no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts or replaces the value for a prefix, returning the previous
    /// value if any.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) -> Option<T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        let prev = node.value.replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Returns the value stored for exactly this prefix.
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&T> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            node = node.children[bit].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Returns a mutable reference to the value stored for this prefix.
    pub fn get_mut(&mut self, prefix: &Ipv4Prefix) -> Option<&mut T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            node = node.children[bit].as_deref_mut()?;
        }
        node.value.as_mut()
    }

    /// Removes a prefix, returning its value. Empty interior nodes are left
    /// in place (they are reclaimed only when the trie is dropped), which
    /// keeps removal simple and is fine for routing-table workloads where
    /// withdrawn prefixes are typically re-announced.
    pub fn remove(&mut self, prefix: &Ipv4Prefix) -> Option<T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            node = node.children[bit].as_deref_mut()?;
        }
        let prev = node.value.take();
        if prev.is_some() {
            self.len -= 1;
        }
        prev
    }

    /// Longest-prefix match for a single IP address.
    pub fn longest_match_ip(&self, ip: u32) -> Option<(Ipv4Prefix, &T)> {
        let mut best: Option<(Ipv4Prefix, &T)> = None;
        let mut node = &self.root;
        let mut depth: u8 = 0;
        loop {
            if let Some(v) = &node.value {
                let p = Ipv4Prefix::new(ip, depth).expect("depth <= 32");
                best = Some((p, v));
            }
            if depth >= 32 {
                break;
            }
            let bit = ((ip >> (31 - depth)) & 1) as usize;
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    depth += 1;
                }
                None => break,
            }
        }
        best
    }

    /// The most specific stored prefix that covers `prefix` (including an
    /// exact match). This is the route an announcement for `prefix` would
    /// compete with or override.
    pub fn longest_covering(&self, prefix: &Ipv4Prefix) -> Option<(Ipv4Prefix, &T)> {
        let mut best: Option<(Ipv4Prefix, &T)> = None;
        let mut node = &self.root;
        let mut depth: u8 = 0;
        loop {
            if let Some(v) = &node.value {
                let p = Ipv4Prefix::new(prefix.addr(), depth).expect("depth <= 32");
                best = Some((p, v));
            }
            if depth >= prefix.len() {
                break;
            }
            let bit = prefix.bit(depth) as usize;
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    depth += 1;
                }
                None => break,
            }
        }
        best
    }

    /// The most specific *strictly less specific* stored prefix covering
    /// `prefix` (excludes an exact match).
    pub fn closest_ancestor(&self, prefix: &Ipv4Prefix) -> Option<(Ipv4Prefix, &T)> {
        match self.longest_covering(prefix) {
            Some((p, v)) if p != *prefix => Some((p, v)),
            Some(_) => {
                // Walk again, stopping one bit short of the exact match.
                let mut best: Option<(Ipv4Prefix, &T)> = None;
                let mut node = &self.root;
                for depth in 0..prefix.len() {
                    if let Some(v) = &node.value {
                        let p = Ipv4Prefix::new(prefix.addr(), depth).expect("depth < 32");
                        best = Some((p, v));
                    }
                    let bit = prefix.bit(depth) as usize;
                    match node.children[bit].as_deref() {
                        Some(child) => node = child,
                        None => return best,
                    }
                }
                best
            }
            None => None,
        }
    }

    /// Iterates over all `(prefix, value)` pairs in depth-first
    /// (pre-order) order, lazily: no intermediate `Vec` is materialized,
    /// so walking a full routing table streams straight out of the trie.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            // A /32 path is 33 nodes deep; 40 slots avoid regrowth.
            stack: {
                let mut stack = Vec::with_capacity(40);
                stack.push((&self.root, 0u32, 0u8));
                stack
            },
        }
    }
}

/// Lazy depth-first iterator over a [`PrefixTrie`], returned by
/// [`PrefixTrie::iter`].
#[derive(Debug)]
pub struct Iter<'a, T> {
    /// Nodes still to visit, as `(node, accumulated address bits, depth)`.
    stack: Vec<(&'a Node<T>, u32, u8)>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (Ipv4Prefix, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, addr, depth)) = self.stack.pop() {
            if depth < 32 {
                // Right child pushed first so the left subtree pops first,
                // matching pre-order.
                if let Some(child) = node.children[1].as_deref() {
                    self.stack
                        .push((child, addr | (1 << (31 - depth)), depth + 1));
                }
                if let Some(child) = node.children[0].as_deref() {
                    self.stack.push((child, addr, depth + 1));
                }
            }
            if let Some(v) = &node.value {
                return Some((Ipv4Prefix::new(addr, depth).expect("depth <= 32"), v));
            }
        }
        None
    }
}

impl<'a, T> IntoIterator for &'a PrefixTrie<T> {
    type Item = (Ipv4Prefix, &'a T);
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().expect("valid prefix")
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(&p("10.0.0.0/9")), None);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(2));
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        let (matched, v) = t.longest_match_ip(0xc0a8_0101).expect("match");
        assert_eq!(matched, p("0.0.0.0/0"));
        assert_eq!(*v, "default");
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);
        let ip = u32::from_be_bytes([10, 1, 2, 3]);
        assert_eq!(t.longest_match_ip(ip).map(|(_, v)| *v), Some(24));
        let ip2 = u32::from_be_bytes([10, 1, 9, 9]);
        assert_eq!(t.longest_match_ip(ip2).map(|(_, v)| *v), Some(16));
        let ip3 = u32::from_be_bytes([10, 200, 0, 1]);
        assert_eq!(t.longest_match_ip(ip3).map(|(_, v)| *v), Some(8));
        let ip4 = u32::from_be_bytes([192, 168, 0, 1]);
        assert_eq!(t.longest_match_ip(ip4).map(|(_, v)| *v), Some(0));
    }

    #[test]
    fn covering_and_ancestor_queries() {
        let mut t = PrefixTrie::new();
        t.insert(p("208.65.152.0/22"), "youtube-agg");
        t.insert(p("208.65.153.0/24"), "youtube-24");
        // Exact match is a covering prefix...
        assert_eq!(
            t.longest_covering(&p("208.65.153.0/24")).map(|(q, _)| q),
            Some(p("208.65.153.0/24"))
        );
        // ...but not an ancestor.
        assert_eq!(
            t.closest_ancestor(&p("208.65.153.0/24")).map(|(q, _)| q),
            Some(p("208.65.152.0/22"))
        );
        // A more specific /25 is covered by the /24.
        assert_eq!(
            t.longest_covering(&p("208.65.153.128/25")).map(|(q, _)| q),
            Some(p("208.65.153.0/24"))
        );
        // Unrelated prefixes have no ancestor.
        assert_eq!(t.closest_ancestor(&p("1.2.3.0/24")), None);
    }

    #[test]
    fn iter_returns_all_prefixes() {
        let mut t = PrefixTrie::new();
        let prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16", "0.0.0.0/0"];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
        }
        assert_eq!(t.iter().count(), 4);
        let mut names: Vec<String> = t.iter().map(|(q, _)| q.to_string()).collect();
        names.sort();
        assert!(names.contains(&"10.1.0.0/16".to_string()));
    }

    #[test]
    fn iter_is_lazy_preorder_and_reentrant() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "root");
        t.insert(p("10.0.0.0/8"), "left");
        t.insert(p("128.0.0.0/1"), "right");
        t.insert(p("10.1.0.0/16"), "left-deep");
        // Pre-order: shallower before deeper, left (0-bit) before right.
        let order: Vec<&str> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(order, vec!["root", "left", "left-deep", "right"]);
        // IntoIterator on a reference allows plain `for` loops.
        let mut count = 0;
        for (_, _) in &t {
            count += 1;
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn host_routes_work() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), "host");
        assert_eq!(
            t.longest_match_ip(0x01020304).map(|(_, v)| *v),
            Some("host")
        );
        assert_eq!(t.longest_match_ip(0x01020305), None);
        assert_eq!(t.get(&p("1.2.3.4/32")), Some(&"host"));
    }

    #[test]
    fn get_mut_allows_in_place_updates() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), vec![1]);
        t.get_mut(&p("10.0.0.0/8")).expect("present").push(2);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&vec![1, 2]));
    }
}
