//! Peer state: configuration, session FSM and per-peer counters.

use std::net::Ipv4Addr;

use dice_bgp::fsm::{SessionFsm, SessionState};
use dice_bgp::route::PeerId;

use crate::config::NeighborConfig;

/// Per-peer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerStats {
    /// UPDATE messages received from the peer.
    pub updates_in: u64,
    /// UPDATE messages sent to the peer.
    pub updates_out: u64,
    /// Routes accepted from the peer after import filtering.
    pub routes_accepted: u64,
    /// Routes rejected by the import filter.
    pub routes_rejected: u64,
    /// Prefixes withdrawn by the peer.
    pub withdrawals: u64,
}

/// One configured BGP peer.
#[derive(Debug, Clone)]
pub struct Peer {
    /// Stable identifier used in the RIB.
    pub id: PeerId,
    /// The peer's address.
    pub address: Ipv4Addr,
    /// The peer's AS number.
    pub remote_as: u32,
    /// The peer's router id (learned from its OPEN; defaults to the
    /// address until then).
    pub router_id: u32,
    /// Import filter name.
    pub import_filter: Option<String>,
    /// Export filter name.
    pub export_filter: Option<String>,
    /// Session state machine.
    pub session: SessionFsm,
    /// Counters.
    pub stats: PeerStats,
}

impl Peer {
    /// Creates a peer from configuration, in the `Idle` state.
    pub fn from_config(id: PeerId, config: &NeighborConfig) -> Self {
        Peer {
            id,
            address: config.address,
            remote_as: config.remote_as,
            router_id: u32::from(config.address),
            import_filter: config.import_filter.clone(),
            export_filter: config.export_filter.clone(),
            session: SessionFsm::new(),
            stats: PeerStats::default(),
        }
    }

    /// Returns true if the session is established.
    pub fn is_established(&self) -> bool {
        self.session.is_established()
    }

    /// Current session state.
    pub fn state(&self) -> SessionState {
        self.session.state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> NeighborConfig {
        NeighborConfig {
            address: Ipv4Addr::new(10, 0, 1, 1),
            remote_as: 17557,
            import_filter: Some("customer_in".into()),
            export_filter: None,
        }
    }

    #[test]
    fn peer_starts_idle() {
        let peer = Peer::from_config(PeerId(1), &config());
        assert_eq!(peer.state(), SessionState::Idle);
        assert!(!peer.is_established());
        assert_eq!(peer.remote_as, 17557);
        assert_eq!(peer.import_filter.as_deref(), Some("customer_in"));
        assert_eq!(peer.stats, PeerStats::default());
    }

    #[test]
    fn session_can_be_established() {
        let mut peer = Peer::from_config(PeerId(1), &config());
        peer.session.establish();
        assert!(peer.is_established());
    }
}
