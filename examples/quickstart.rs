//! Quickstart: attach DiCE to a BGP router and detect a route leak enabled
//! by a misconfigured customer import filter.
//!
//! Run with `cargo run --example quickstart`.

use dice::prelude::*;

fn main() {
    // 1. Build the DiCE-enabled Provider router from the paper's Figure 2
    //    topology, with a partially correct customer import filter.
    let topo = figure2_topology(CustomerFilterMode::Erroneous);
    let provider = topo
        .node_by_name("Provider")
        .expect("Figure 2 has a Provider");
    let mut router = BgpRouter::new(topo.nodes()[provider.0].config.clone());
    router.start();

    // 2. Live operation: the rest of the Internet announces the victim's
    //    prefix (YouTube's 208.65.152.0/22, originated by AS 36561).
    let internet = router
        .peer_by_address(addr::INTERNET)
        .expect("Internet peer");
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356, asn::VICTIM]);
    router.handle_update(
        internet,
        &UpdateMessage::announce(
            vec!["208.65.152.0/22".parse().expect("valid prefix")],
            &attrs,
        ),
    );
    println!(
        "live router has {} prefix(es) installed",
        router.rib().prefix_count()
    );

    // 3. The customer sends a routine announcement of its own block; DiCE
    //    uses it as the observed input to derive exploratory messages.
    let customer = router
        .peer_by_address(addr::CUSTOMER)
        .expect("Customer peer");
    let mut cattrs = RouteAttrs::default();
    cattrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
    let observed =
        UpdateMessage::announce(vec!["41.1.0.0/16".parse().expect("valid prefix")], &cattrs);

    // 4. Build an exploration session and run one DiCE round: checkpoint,
    //    concolic exploration of the UPDATE handler and the configured
    //    filters, fault checking. The builder owns the checker registry;
    //    with none registered it defaults to the origin-hijack checker.
    //    (The legacy one-liner still works:
    //    `Dice::new().run_single(&router, customer, &observed)`.)
    let session = DiceBuilder::new().build();
    let report = session.explore(&router, &[(customer, observed.clone())]);
    println!("{report}");

    // 5. The erroneous filter lets the customer announce the victim's
    //    prefix: DiCE reports the leakable range before any hijack happens.
    assert!(report.has_faults(), "the misconfiguration must be detected");
    assert!(
        report.isolation_preserved,
        "the live router is never touched"
    );
    println!(
        "quickstart complete: DiCE found {} potential fault(s)",
        report.faults.len()
    );
}
