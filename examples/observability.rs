//! Structured tracing and exportable metrics over a live exploration run.
//!
//! Installs the buffered trace recorder, drives a wire-fed continuous
//! exploration (`WireReplayDriver` → `LiveOrchestrator`), and then turns
//! the captured telemetry into the two export formats the stack speaks:
//! a Chrome Trace Event JSONL (load it at <https://ui.perfetto.dev> or
//! `chrome://tracing`) and a Prometheus text exposition sampled from the
//! v2 control snapshot. Tracing is out-of-band by construction — the run's
//! report digest is byte-identical with and without the recorder, which
//! the example asserts at the end.
//!
//! Run with `cargo run --release --example observability`.

use std::sync::Arc;

use dice::obs::{chrome_trace_jsonl, validate_chrome_trace_jsonl, validate_prometheus_text};
use dice::prelude::*;

/// One wire-fed live run over the Figure 2 topology: 32 table-dump
/// prefixes plus 16 incremental updates, replayed 16 frames per epoch.
fn traced_run() -> (LiveReport, ControlSnapshot) {
    let topo = figure2_topology(CustomerFilterMode::Erroneous);
    let provider = topo.node_by_name("Provider").expect("Figure 2 node");
    let config = TraceGenConfig {
        prefix_count: 32,
        update_count: 16,
        ..Default::default()
    };
    let trace = synthesize_wire_trace(&config, provider, asn::INTERNET, addr::INTERNET);
    let mut driver = WireReplayDriver::new(trace).with_frames_per_epoch(16);
    let session = DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(8))
        .build();
    let orchestrator = LiveOrchestrator::new(session)
        .with_core_budget(2)
        .with_ingest_stats(driver.stats());
    let plane = orchestrator.control_plane();
    let mut sim = Simulator::new(&topo);
    let report = orchestrator.run(&mut sim, |sim, epoch| driver.drive(sim, epoch));
    let snapshot = (*plane.sample()).clone();
    (report, snapshot)
}

fn main() {
    // 1. Trace a full run through the buffered recorder: per-thread
    //    buffers, one global sequence counter, drained once at the end.
    let recorder = Arc::new(BufferedRecorder::new());
    let (report, snapshot) = {
        let _guard = SinkGuard::install(recorder.clone());
        traced_run()
    };
    let events = recorder.drain();
    println!(
        "traced {} round(s), {} run(s): {} span/event record(s) captured",
        report.rounds.len(),
        report.total_runs(),
        events.len(),
    );

    // 2. Chrome Trace Event JSONL — one object per line, Perfetto-loadable.
    //    The serde-free validator round-trips every line.
    let jsonl = chrome_trace_jsonl(&events);
    let parsed = validate_chrome_trace_jsonl(&jsonl).expect("exported trace validates");
    assert_eq!(parsed.len(), events.len());
    println!(
        "\n--- chrome trace (first 3 of {} lines; load the full file in ui.perfetto.dev) ---",
        events.len()
    );
    for line in jsonl.lines().take(3) {
        println!("{line}");
    }

    // 3. Prometheus text exposition from the v2 control snapshot: counters
    //    and gauges plus quantile-labelled latency summaries.
    let exposition = snapshot.prometheus();
    validate_prometheus_text(&exposition).expect("exposition parses against the grammar");
    println!("\n--- prometheus exposition ---");
    print!("{exposition}");

    // 4. Latency distributions, straight from the snapshot's histogram
    //    summaries (schema v2 appends them after the v1 fields).
    println!("--- latency summaries ---");
    println!("round latency:  {}", snapshot.round_latency);
    println!("wave latency:   {}", snapshot.wave_latency);
    println!("decode latency: {}", snapshot.ingest.decode_latency);

    // 5. The tentpole invariant: tracing never changes a result. Rerun
    //    untraced and compare digests byte for byte.
    let (untraced, _) = traced_run();
    assert_eq!(
        report.digest(),
        untraced.digest(),
        "tracing must be out-of-band"
    );
    println!("\ntraced and untraced report digests are byte-identical");
}
