//! Standalone use of the concolic execution engine (the paper's Figure 1):
//! start from one concrete input, record branch constraints, negate them
//! one at a time and discover every reachable path.
//!
//! Run with `cargo run --example concolic_exploration`.

use dice::prelude::*;

/// A toy message handler with nested branches: a TTL check, a metric check
/// and a "magic value" comparison that plain random testing would be
/// unlikely to hit.
fn handler(ctx: &mut ExecCtx, input: &InputValues) -> String {
    let ttl = ctx.symbolic_u32("ttl", input.get_or("ttl", 0) as u32);
    let metric = ctx.symbolic_u32("metric", input.get_or("metric", 0) as u32);

    let expired = ttl.lt_const(2, ctx);
    if ctx.branch_labeled("ttl-expired", expired) {
        return "drop: ttl expired".to_string();
    }
    let high_metric = metric.gt_const(1_000, ctx);
    if ctx.branch_labeled("metric-too-high", high_metric) {
        return "reject: metric too high".to_string();
    }
    let magic = metric.eq_const(777, ctx);
    if ctx.branch_labeled("magic-metric", magic) {
        return "special-case path reached (metric == 777)".to_string();
    }
    "forward".to_string()
}

fn main() {
    let seed = InputValues::new().with("ttl", 64).with("metric", 10);
    println!("observed input: {seed}");

    let engine = ConcolicEngine::with_config(EngineConfig::default().with_max_runs(32));
    let mut program = handler;
    let result = engine.explore(&mut program, &[seed]);

    println!(
        "\nexplored {} run(s), {} distinct path(s):",
        result.stats.runs,
        result.distinct_paths()
    );
    for run in &result.runs {
        let kind = if run.parent.is_none() {
            "seed"
        } else {
            "generated"
        };
        println!("  [{kind:9}] {} -> {}", run.trace.input, run.output);
    }
    println!(
        "\nbranch coverage: {}/{} sites covered in both directions",
        result.coverage.complete_sites(),
        result.coverage.site_count()
    );
    assert!(
        result.outputs().any(|o| o.contains("special-case")),
        "the magic branch must be discovered"
    );
    assert_eq!(
        result.coverage.complete_sites(),
        result.coverage.site_count()
    );
}
