//! The full §4.2 scenario on the Figure 2 topology: compare how the three
//! customer-filter configurations behave in the live network (simulator)
//! and what DiCE predicts about them (exploration), for the YouTube /
//! Pakistan Telecom class of incident.
//!
//! Run with `cargo run --example route_leak_detection`.

use dice::prelude::*;

/// Replays the actual incident in the live simulator: the customer leaks
/// the victim's more-specific /24. Returns true if the hijack reaches the
/// rest of the Internet.
fn incident_spreads(mode: CustomerFilterMode) -> bool {
    let topo = figure2_topology(mode);
    let mut sim = Simulator::new(&topo);
    let provider = topo.node_by_name("Provider").expect("node");
    let internet = topo.node_by_name("RestOfInternet").expect("node");

    // The victim's legitimate /22 is already known via the Internet.
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356, asn::VICTIM]);
    sim.inject(
        provider,
        addr::INTERNET,
        BgpMessage::Update(UpdateMessage::announce(
            vec!["208.65.152.0/22".parse().expect("valid")],
            &attrs,
        )),
    );
    sim.run_to_quiescence(100);

    // The customer (mis)announces the victim's more-specific /24.
    let mut cattrs = RouteAttrs::default();
    cattrs.as_path = AsPath::from_sequence([asn::CUSTOMER]);
    sim.inject(
        provider,
        addr::CUSTOMER,
        BgpMessage::Update(UpdateMessage::announce(
            vec!["208.65.153.0/24".parse().expect("valid")],
            &cattrs,
        )),
    );
    sim.run_to_quiescence(100);

    sim.router(internet)
        .rib()
        .best_route(&"208.65.153.0/24".parse().expect("valid"))
        .map(|r| r.origin_as().map(|a| a.value()) == Some(asn::CUSTOMER))
        .unwrap_or(false)
}

/// Runs DiCE proactively on the Provider before any incident: explore
/// inputs derived from a routine customer announcement and report the
/// prefix ranges that could be leaked.
fn dice_prediction(mode: CustomerFilterMode) -> ExplorationReport {
    let topo = figure2_topology(mode);
    let provider = topo.node_by_name("Provider").expect("node");
    let mut router = BgpRouter::new(topo.nodes()[provider.0].config.clone());
    router.start();

    let internet = router.peer_by_address(addr::INTERNET).expect("peer");
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356, asn::VICTIM]);
    router.handle_update(
        internet,
        &UpdateMessage::announce(vec!["208.65.152.0/22".parse().expect("valid")], &attrs),
    );

    let customer = router.peer_by_address(addr::CUSTOMER).expect("peer");
    let mut cattrs = RouteAttrs::default();
    cattrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
    let observed = UpdateMessage::announce(vec!["41.1.0.0/16".parse().expect("valid")], &cattrs);
    Dice::new().run_single(&router, customer, &observed)
}

fn main() {
    println!(
        "{:<42} {:>18} {:>22}",
        "customer filter configuration", "incident spreads?", "DiCE predicts leak?"
    );
    for (mode, label) in [
        (
            CustomerFilterMode::Correct,
            "correct (prefix set + origin pinned)",
        ),
        (
            CustomerFilterMode::Erroneous,
            "erroneous (stale prefix-set entry)",
        ),
        (
            CustomerFilterMode::Missing,
            "missing (no customer filter at all)",
        ),
    ] {
        let spreads = incident_spreads(mode);
        let report = dice_prediction(mode);
        println!(
            "{:<42} {:>18} {:>22}",
            label,
            if spreads { "YES (outage)" } else { "no" },
            if report.has_faults() {
                format!(
                    "YES ({})",
                    report
                        .leaked_prefixes()
                        .iter()
                        .map(|p| p.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            } else {
                "no".to_string()
            }
        );
    }
    println!();
    println!("A correct filter stops the incident and DiCE stays quiet; the erroneous filter");
    println!("lets the incident through and DiCE flags the leakable range in advance. The");
    println!("fully missing filter also lets the incident through, but offers no configured");
    println!("policy branches for this observed input, so detection requires the partially");
    println!("correct configuration the paper evaluates (or a denser installed table).");
}
