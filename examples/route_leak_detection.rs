//! The full §4.2 scenario on the Figure 2 topology: compare how the three
//! customer-filter configurations behave in the live network (simulator)
//! and what DiCE detects about them (exploration), for the YouTube /
//! Pakistan Telecom class of incident.
//!
//! Detection uses the relationship-aware Gao-Rexford checker
//! ([`RouteLeakChecker`]): the Provider classifies AS 17557 as its
//! customer and AS 1299 as its peer, so a customer-learned route whose AS
//! path transits the peer is a valley-free violation — the route-leak
//! shape itself, independent of which prefix is being leaked. That makes
//! the checker strictly sharper than prefix/origin pinning: it condemns
//! peer-transiting paths even inside the customer's own allocation, which
//! no configuration in the scenario filters on.
//!
//! Run with `cargo run --example route_leak_detection`.

use dice::prelude::*;

/// Replays the actual incident in the live simulator: the customer leaks
/// the victim's more-specific /24. Returns true if the hijack reaches the
/// rest of the Internet.
fn incident_spreads(mode: CustomerFilterMode) -> bool {
    let topo = figure2_topology(mode);
    let mut sim = Simulator::new(&topo);
    let provider = topo.node_by_name("Provider").expect("node");
    let internet = topo.node_by_name("RestOfInternet").expect("node");

    // The victim's legitimate /22 is already known via the Internet.
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356, asn::VICTIM]);
    sim.inject(
        provider,
        addr::INTERNET,
        BgpMessage::Update(UpdateMessage::announce(
            vec!["208.65.152.0/22".parse().expect("valid")],
            &attrs,
        )),
    );
    sim.run_to_quiescence(100);

    // The customer (mis)announces the victim's more-specific /24.
    let mut cattrs = RouteAttrs::default();
    cattrs.as_path = AsPath::from_sequence([asn::CUSTOMER]);
    sim.inject(
        provider,
        addr::CUSTOMER,
        BgpMessage::Update(UpdateMessage::announce(
            vec!["208.65.153.0/24".parse().expect("valid")],
            &cattrs,
        )),
    );
    sim.run_to_quiescence(100);

    sim.router(internet)
        .rib()
        .best_route(&"208.65.153.0/24".parse().expect("valid"))
        .map(|r| r.origin_as().map(|a| a.value()) == Some(asn::CUSTOMER))
        .unwrap_or(false)
}

/// Runs DiCE on the Provider with the Gao-Rexford route-leak checker: the
/// observed input is the customer re-exporting a route it learned from its
/// *other* upstream (AS 1299) — a textbook leak. The checker fires exactly
/// when the import filter admits the valley.
fn dice_detection(mode: CustomerFilterMode) -> ExplorationReport {
    let topo = figure2_topology(mode);
    let provider = topo.node_by_name("Provider").expect("node");
    let mut router = BgpRouter::new(topo.nodes()[provider.0].config.clone());
    router.start();

    let internet = router.peer_by_address(addr::INTERNET).expect("peer");
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356, asn::VICTIM]);
    router.handle_update(
        internet,
        &UpdateMessage::announce(vec!["208.65.152.0/22".parse().expect("valid")], &attrs),
    );

    // The leaked route: learned from the customer, but its path transits
    // the Provider's peer (1299) on the way to the victim's origin.
    let customer = router.peer_by_address(addr::CUSTOMER).expect("peer");
    let mut cattrs = RouteAttrs::default();
    cattrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::INTERNET, asn::VICTIM]);
    let observed =
        UpdateMessage::announce(vec!["208.65.153.0/24".parse().expect("valid")], &cattrs);

    let session = DiceBuilder::new()
        .checker(Box::new(
            RouteLeakChecker::new()
                .with_customer(asn::CUSTOMER)
                .with_peer(asn::INTERNET),
        ))
        .build();
    let report = session.explore(&router, &[(customer, observed)]);
    // Every fault this session can raise comes from the valley-free
    // checker — the registry replaced the default origin-hijack one.
    assert!(
        report.faults.iter().all(|f| f.checker == "route-leak"),
        "unexpected checker in {report}"
    );
    report
}

fn main() {
    println!(
        "{:<42} {:>18} {:>22}",
        "customer filter configuration", "incident spreads?", "DiCE flags leak?"
    );
    for (mode, label) in [
        (
            CustomerFilterMode::Correct,
            "correct (prefix set + origin pinned)",
        ),
        (
            CustomerFilterMode::Erroneous,
            "erroneous (stale prefix-set entry)",
        ),
        (
            CustomerFilterMode::Missing,
            "missing (no customer filter at all)",
        ),
    ] {
        let spreads = incident_spreads(mode);
        let report = dice_detection(mode);
        println!(
            "{:<42} {:>18} {:>22}",
            label,
            if spreads { "YES (outage)" } else { "no" },
            if report.has_faults() {
                format!(
                    "YES ({})",
                    report
                        .leaked_prefixes()
                        .iter()
                        .map(|p| p.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            } else {
                "no".to_string()
            }
        );
    }
    println!();
    println!("The correct filter stops the victim-prefix incident (no outage), but DiCE's");
    println!("exploration still finds a valley it admits: announcements inside the customer's");
    println!("own 41.0.0.0/12 block that transit the peer pass the prefix+origin pin — the");
    println!("filter is not path-aware. The misconfigurations additionally admit the victim's");
    println!("/24 itself, the leak that actually spreads. The origin-hijack checker alone");
    println!("could flag none of these without a covering route already installed.");
}
