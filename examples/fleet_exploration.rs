//! Fleet-level exploration: DiCE beside every node of the Figure 2
//! topology.
//!
//! The paper's federated setting — a DiCE instance runs next to each node
//! of the deployment, exploring from the inputs *that node* observed. This
//! example simulates live traffic over the three-router Figure 2 testbed,
//! harvests each node's observed UPDATEs from the simulation's delivery
//! log, builds a session with two pluggable checkers through
//! `DiceBuilder`, and runs one exploration round per node concurrently
//! under a shared core budget. Faults are deduplicated fleet-wide: the
//! same leak seen from several vantage points reports once, with every
//! sighting listed.
//!
//! Run with `cargo run --release --example fleet_exploration`.

use dice::prelude::*;

fn main() {
    // 1. The Figure 2 topology with the erroneous (partially correct)
    //    customer import filter on the Provider.
    let topo = figure2_topology(CustomerFilterMode::Erroneous);
    let provider = topo.node_by_name("Provider").expect("Figure 2 node");
    let mut sim = Simulator::new(&topo);

    // 2. Live traffic. The rest of the Internet announces the victim's
    //    /22; later the customer makes a routine announcement of its own
    //    block. The simulator records every delivered UPDATE per node —
    //    the observation log DiCE harvests.
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356, asn::VICTIM]);
    attrs.next_hop = addr::INTERNET;
    sim.inject(
        provider,
        addr::INTERNET,
        BgpMessage::Update(UpdateMessage::announce(
            vec!["208.65.152.0/22".parse().expect("valid prefix")],
            &attrs,
        )),
    );
    sim.run_to_quiescence(100);

    let mut cattrs = RouteAttrs::default();
    cattrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
    cattrs.next_hop = addr::CUSTOMER;
    sim.inject(
        provider,
        addr::CUSTOMER,
        BgpMessage::Update(UpdateMessage::announce(
            vec!["41.1.0.0/16".parse().expect("valid prefix")],
            &cattrs,
        )),
    );
    sim.run_to_quiescence(100);

    for node in 0..sim.len() {
        let node = NodeId(node);
        println!(
            "node {} ({}) observed {} UPDATE(s)",
            node.0,
            sim.name(node),
            sim.observed_inputs(node).len()
        );
    }

    // 3. Build the exploration session: engine budget, workers, and a
    //    checker registry — the origin-hijack checker of §4.2 plus the
    //    forwarding-loop checker, both applied to every explored outcome.
    let session = DiceBuilder::new()
        .engine(dice::symexec::EngineConfig::default().with_max_runs(64))
        .checker(Box::new(OriginHijackChecker::new()))
        .checker(Box::new(ForwardingLoopChecker::new()))
        .build();

    // 4. One exploration round beside every node, concurrently, splitting
    //    the machine between the per-node worker pools.
    let report = FleetExplorer::new(session).explore(&sim);
    println!("\n{report}");

    // 5. The provider's misconfiguration is detected fleet-wide before any
    //    hijack happens, and no node's live state was touched.
    assert!(report.has_faults(), "the erroneous filter must be detected");
    assert!(
        report.faults.iter().any(|f| f.nodes.contains(&provider)),
        "the fault is attributed to the Provider's exploration"
    );
    assert!(report.nodes.iter().all(|n| n.report.isolation_preserved));
    println!(
        "fleet exploration complete: {} sighting(s) merged into {} distinct fault(s)",
        report.total_sightings(),
        report.faults.len()
    );
}
