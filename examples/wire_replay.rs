//! Wire-level replay driving a live exploration run, observed through the
//! control plane.
//!
//! Everything the simulator sees on this path starts as raw bytes: a
//! synthetic `WireTrace` (framed, timestamped, peer-tagged BGP messages)
//! is serialized, parsed back, and replayed by a `WireReplayDriver` that
//! decodes every frame through the real RFC 4271 codec
//! (`dice_bgp::wire::decode`), checks the encode→decode→encode byte
//! identity, and injects the results — no hand-built `UpdateMessage` ever
//! reaches the simulator. The `LiveOrchestrator` publishes a versioned
//! `ControlSnapshot` after every round; the example samples it the way an
//! operational sidecar would and prints the final status surface.
//!
//! Run with `cargo run --release --example wire_replay`.

use dice::prelude::*;

fn main() {
    // 1. A synthetic wire trace for the Provider's Internet session: a
    //    table dump of 48 prefixes followed by 24 incremental updates,
    //    every message encoded to RFC 4271 frames. Serializing and
    //    re-parsing proves the replay consumes only bytes.
    let topo = figure2_topology(CustomerFilterMode::Correct);
    let provider = topo.node_by_name("Provider").expect("Figure 2 node");
    let config = TraceGenConfig {
        prefix_count: 48,
        update_count: 24,
        ..Default::default()
    };
    let trace = synthesize_wire_trace(&config, provider, asn::INTERNET, addr::INTERNET);
    let bytes = trace.to_bytes();
    let trace = WireTrace::from_bytes(&bytes).expect("serialized trace parses");
    println!(
        "synthesized {} frames ({} bytes on the wire, {} ms of traffic)",
        trace.len(),
        bytes.len(),
        trace.duration_ms(),
    );

    // 2. The driver delivers 24 frames per exploration epoch, strictly
    //    through the codec; its ingest counters feed the control plane.
    let mut driver = WireReplayDriver::new(trace).with_frames_per_epoch(24);
    let session = DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(4))
        .build();
    let orchestrator = LiveOrchestrator::new(session)
        .with_core_budget(2)
        .with_ingest_stats(driver.stats());
    let plane = orchestrator.control_plane();

    // 3. Run: the orchestrator interleaves replay epochs with exploration
    //    rounds and publishes a fresh snapshot after each round.
    let mut sim = Simulator::new(&topo);
    let report = orchestrator.run(&mut sim, |sim, epoch| driver.drive(sim, epoch));
    println!("\n{report}");

    // 4. The final control snapshot — the versioned status surface a
    //    monitoring sidecar samples mid-run without stopping anything.
    let snapshot = plane.sample();
    println!("{snapshot}");

    assert_eq!(snapshot.schema_version, CONTROL_SCHEMA_VERSION);
    assert_eq!(snapshot.rounds, report.rounds.len());
    assert_eq!(snapshot.ingest.frames, 72);
    assert_eq!(snapshot.ingest.decoded, 72);
    assert_eq!(snapshot.ingest.decode_errors, 0);
    assert_eq!(snapshot.ingest.reencode_mismatches, 0);
    assert!(snapshot.ingest.updates_per_second > 0.0);
    assert!(snapshot.delivered > 0);
    assert!(
        sim.router(provider).rib().prefix_count() > 0,
        "the wire-fed table dump populated the provider's RIB"
    );
    println!(
        "\nreplayed {} frames into {} exploration round(s); the provider's RIB holds {} prefixes",
        snapshot.ingest.frames,
        snapshot.rounds,
        sim.router(provider).rib().prefix_count(),
    );
}
