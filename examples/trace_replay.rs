//! Generate a synthetic RouteViews-like trace, load the full table into the
//! Provider router and measure updates/second with and without DiCE
//! exploration sharing the core (the §4.1 CPU experiment, example-sized).
//!
//! Run with `cargo run --example trace_replay [prefix_count]`.

use dice::prelude::*;
use dice_netsim::slowdown_percent;

fn main() {
    let prefix_count: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);

    let config = TraceGenConfig {
        prefix_count,
        update_count: 1_000,
        ..Default::default()
    };
    println!(
        "generating synthetic trace: {} prefixes, {} updates...",
        config.prefix_count, config.update_count
    );
    let trace = generate_trace(&config, asn::INTERNET, addr::INTERNET);

    let build_router = || {
        let topo = figure2_topology(CustomerFilterMode::Erroneous);
        let provider = topo.node_by_name("Provider").expect("node");
        let mut r = BgpRouter::new(topo.nodes()[provider.0].config.clone());
        r.start();
        r
    };

    // Baseline: replay without exploration.
    let mut router = build_router();
    let replayer = Replayer::new(&trace, addr::INTERNET);
    let load = replayer.load_table(&mut router);
    println!(
        "table loaded: {} prefixes at {:.0} updates/s",
        load.rib_prefixes, load.updates_per_second
    );
    let baseline = replayer.replay_updates(&mut router, |_| {});
    println!(
        "baseline update replay: {:.0} updates/s",
        baseline.updates_per_second
    );

    // With exploration: DiCE runs on a checkpoint after every 200 updates.
    let mut router = build_router();
    let replayer = Replayer::new(&trace, addr::INTERNET);
    replayer.load_table(&mut router);
    let customer = router.peer_by_address(addr::CUSTOMER).expect("peer");
    let mut cattrs = RouteAttrs::default();
    cattrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
    let observed = UpdateMessage::announce(vec!["41.1.0.0/16".parse().expect("valid")], &cattrs);
    let dice = Dice::with_config(
        DiceConfig::default().with_engine(EngineConfig::default().with_max_runs(8)),
    );
    let checkpoint = router.clone();
    let loaded = replayer.replay_updates(&mut router, |fed| {
        if fed % 200 == 0 {
            let _ = dice.run_single(&checkpoint, customer, &observed);
        }
    });
    println!(
        "update replay with exploration: {:.0} updates/s",
        loaded.updates_per_second
    );
    println!(
        "performance impact: {:.1}% (paper reports ~8% under full load, negligible in the realistic scenario)",
        slowdown_percent(baseline.updates_per_second, loaded.updates_per_second)
    );
}
