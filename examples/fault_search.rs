//! Coverage-guided fault-plan search with automatic counterexample
//! shrinking.
//!
//! The Figure 2 topology is configured with the customer filter *missing*
//! — a quiescent run is fault-free. The example drives the scenario of the
//! fault-search test suite: the Customer announces its block at epoch 0,
//! later epochs carry unrelated Internet-side traffic, and the search
//! (restricted to partition/heal specs) explores the plan space until it
//! discovers that severing the Customer wedges the Internet node — the
//! Provider's withdrawal is never followed by a re-announcement, a BGP
//! wedgie. The triggering plan is then delta-debugged to a 1-minimal
//! repro and replayed byte-identically from its `(plan, seed)` bundle.
//!
//! Run with `cargo run --release --example fault_search`.

use dice::prelude::*;

/// The healed-partition wedgie scenario: customer block at epoch 0, then
/// steady Internet-side traffic so the fleet round clock keeps ticking
/// after any injected fault.
struct WedgieScenario;

impl FaultScenario for WedgieScenario {
    fn build(&self) -> Simulator {
        Simulator::new(&figure2_topology(CustomerFilterMode::Missing))
    }

    fn drive(&self, sim: &mut Simulator, epoch: usize) -> bool {
        let provider = NodeId(1);
        let mut attrs = RouteAttrs::default();
        if epoch == 0 {
            attrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
            attrs.next_hop = addr::CUSTOMER;
            sim.inject(
                provider,
                addr::CUSTOMER,
                BgpMessage::Update(UpdateMessage::announce(
                    vec!["41.1.0.0/16".parse().expect("valid")],
                    &attrs,
                )),
            );
        } else {
            attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356]);
            attrs.next_hop = addr::INTERNET;
            let block = format!("198.51.{}.0/24", 99 + epoch);
            sim.inject(
                provider,
                addr::INTERNET,
                BgpMessage::Update(UpdateMessage::announce(
                    vec![block.parse().expect("valid")],
                    &attrs,
                )),
            );
        }
        epoch < 3
    }
}

fn main() {
    let session = DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(4))
        .checker(Box::new(BgpWedgieChecker::new()))
        .build();
    let orchestrator = LiveOrchestrator::new(session).with_core_budget(1);
    let plane = orchestrator.control_plane();

    let search = FaultPlanSearch::new(orchestrator)
        .with_seed(1)
        .with_budget(8)
        .with_epoch_horizon(3)
        .with_spec_kinds(SpecKindMask::only_partitions());

    let report = search.run(&WedgieScenario);
    // Sample now: each orchestrator run (including replays below)
    // republishes to the shared control plane, and only the search's own
    // publish carries the counters.
    let snapshot = plane.sample();
    print!("{report}");
    assert!(
        report.baseline_fault_keys.is_empty(),
        "the empty-plan control run must stay clean"
    );
    assert!(
        !report.repros.is_empty(),
        "expected the search to discover the wedgie"
    );

    for repro in &report.repros {
        println!("\nminimized plan (seed {}):", repro.seed());
        for spec in repro.plan.specs() {
            println!("  {spec:?}");
        }
        println!("fault: {}", repro.fault);

        let replay = search.replay(&WedgieScenario, repro);
        assert!(
            repro.matches(&replay),
            "replay must be byte-identical to the bundled digests"
        );
        println!(
            "replay: byte-identical ({} fault(s) injected)",
            replay.report.injected_faults
        );
    }

    println!(
        "\ncontrol snapshot v{}: search plans={} novel={} repros={}",
        snapshot.schema_version,
        snapshot.search.plans,
        snapshot.search.novel,
        snapshot.search.repros
    );
    assert_eq!(snapshot.search.repros, report.repros.len() as u64);
}
