//! Continuous ("live") exploration: DiCE running *alongside* a simulation
//! that keeps making progress.
//!
//! This is the paper's actual operating mode — not one harvested round
//! over a frozen snapshot, but exploration rounds interleaved with live
//! execution. The example drives three epochs of traffic through the
//! Figure 2 wiring; after each epoch the `LiveOrchestrator` harvests the
//! *incremental window* of newly observed UPDATEs per node (the delivery
//! log is epoch-tagged, nothing is ever wiped) and runs one fleet round
//! over it. Faults are deduplicated across rounds: a leak re-detected
//! every round reports once, with every sighting round listed.
//!
//! The scenario also shows why continuous rounds matter: the customer
//! announces its block (installed at the provider), a mid-run round
//! explores *while it is installed* and catches that exploratory variants
//! would make the provider flap the route (announce/withdraw oscillation),
//! and then the customer withdraws it — after which a single end-of-run
//! round can no longer see the fault.
//!
//! Run with `cargo run --release --example live_exploration`.

use dice::prelude::*;
use dice::router::policy::parse_filter;

fn main() {
    // 1. The Figure 2 wiring, with an attribute-gated customer import
    //    filter on the Provider: the customer's routes are accepted when
    //    the origin AS matches (or a MED escape hatch fires) and rejected
    //    otherwise — so exploratory variants of one observed announcement
    //    keep the prefix but flip the verdict.
    let filter = parse_filter(
        r#"filter customer_in {
            if source_as = 17557 then accept;
            if med > 100 then accept;
            reject;
        }"#,
    )
    .expect("valid filter");
    let topo = figure2_topology_with_customer_filter(filter);
    let provider = topo.node_by_name("Provider").expect("Figure 2 node");
    let mut sim = Simulator::new(&topo);

    // 2. The session shared by every round: the showcase hijack checker
    //    plus the sequence-aware route-oscillation checker, which replays
    //    each round's intercepted announce/withdraw message sequences.
    let session = DiceBuilder::new()
        .checker(Box::new(OriginHijackChecker::new()))
        .checker(Box::new(RouteOscillationChecker::new()))
        .build();

    // 3. Drive the simulation and explore continuously. The driver is
    //    called once per epoch to inject the next stretch of live traffic;
    //    the orchestrator quiesces the simulator, harvests the new window
    //    and runs one round over every node.
    let flap_prefix: Ipv4Prefix = "41.1.0.0/16".parse().expect("valid");
    // Compaction (on by default) would drop the harvested log after each
    // round; this example re-harvests the same simulator at the end for
    // the one-shot comparison, so the full history is retained.
    let orchestrator = LiveOrchestrator::new(session)
        .with_max_rounds(8)
        .with_log_compaction(false);
    let report = orchestrator.run(&mut sim, |sim, epoch| {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
        attrs.next_hop = addr::CUSTOMER;
        match epoch {
            // Epoch 0: the customer announces its block; the provider
            // accepts and installs it.
            0 => {
                sim.inject(
                    provider,
                    addr::CUSTOMER,
                    BgpMessage::Update(UpdateMessage::announce(vec![flap_prefix], &attrs)),
                );
                true
            }
            // Epoch 1: routine re-announcement of a second block.
            1 => {
                sim.inject(
                    provider,
                    addr::CUSTOMER,
                    BgpMessage::Update(UpdateMessage::announce(
                        vec!["41.2.0.0/16".parse().expect("valid")],
                        &attrs,
                    )),
                );
                true
            }
            // Epoch 2: the customer withdraws the first block — from now
            // on no checkpoint holds it, so no later round could catch
            // the oscillation. The driver reports completion.
            _ => {
                sim.inject(
                    provider,
                    addr::CUSTOMER,
                    BgpMessage::Update(UpdateMessage::withdraw(vec![flap_prefix])),
                );
                false
            }
        }
    });

    println!("{report}");
    for round in &report.rounds {
        println!(
            "round {} harvested the epoch window [{}, {}) -> {} run(s)",
            round.index,
            round.window.0,
            round.window.1,
            round.report.total_runs(),
        );
    }

    // 4. The mid-run round caught the temporal fault...
    let oscillation = report
        .faults
        .iter()
        .find(|f| f.fault.checker == "route-oscillation")
        .expect("the mid-run round catches the flap");
    assert_eq!(oscillation.fault.leaked_prefix(), flap_prefix);
    println!(
        "\ncaught while installed: {} (round(s) {:?})",
        oscillation.fault, oscillation.rounds
    );

    // ...which a single end-of-run harvest provably misses: the same
    // session over the same final simulator state checkpoints a table the
    // withdrawn route is long gone from, so nothing oscillates on that
    // prefix. (The second block is still installed and still flags — the
    // *temporal* fault is exactly the one the single round loses.)
    let one_shot = FleetExplorer::new(
        DiceBuilder::new()
            .checker(Box::new(OriginHijackChecker::new()))
            .checker(Box::new(RouteOscillationChecker::new()))
            .build(),
    )
    .explore(&sim);
    assert!(one_shot.faults.iter().all(|f| {
        f.fault.checker != "route-oscillation" || f.fault.leaked_prefix() != flap_prefix
    }));
    println!(
        "a single end-of-run round over the same state misses the {flap_prefix} oscillation — continuous rounds were required"
    );
    assert!(report.rounds.iter().all(|r| r
        .report
        .nodes
        .iter()
        .all(|n| n.report.isolation_preserved)));
}
