//! # dice
//!
//! Umbrella crate for the DiCE reproduction ("Toward Online Testing of
//! Federated and Heterogeneous Distributed Systems", Canini et al., USENIX
//! ATC 2011): re-exports of every workspace crate plus a prelude used by
//! the examples and integration tests.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dice_bgp as bgp;
pub use dice_checkpoint as checkpoint;
pub use dice_core as core;
pub use dice_netsim as netsim;
pub use dice_router as router;
pub use dice_solver as solver;
pub use dice_symexec as symexec;

/// Commonly used items across the DiCE stack.
pub mod prelude {
    pub use dice_bgp::attributes::RouteAttrs;
    pub use dice_bgp::message::{BgpMessage, UpdateMessage};
    pub use dice_bgp::prefix::Ipv4Prefix;
    pub use dice_bgp::route::{PeerId, Route};
    pub use dice_bgp::AsPath;
    pub use dice_checkpoint::{CheckpointManager, Checkpointable};
    pub use dice_core::{
        CheckpointedRouter, CustomerFilterMode, Dice, DiceConfig, ExplorationReport, Fault,
        OriginHijackChecker, SharedCoreScheduler, UpdateTemplate,
    };
    pub use dice_netsim::topology::{addr, asn, figure2_topology};
    pub use dice_netsim::{generate_trace, Replayer, Simulator, TraceGenConfig};
    pub use dice_router::{BgpRouter, NeighborConfig, RouterConfig};
    pub use dice_symexec::{ConcolicEngine, EngineConfig, ExecCtx, InputValues};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let _ = CustomerFilterMode::Correct;
        let _ = Dice::new();
        let _ = TraceGenConfig::tiny();
    }
}
