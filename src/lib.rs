//! # dice
//!
//! Umbrella crate for the DiCE reproduction ("Toward Online Testing of
//! Federated and Heterogeneous Distributed Systems", Canini et al., USENIX
//! ATC 2011): re-exports of every workspace crate plus a prelude used by
//! the examples and integration tests.
//!
//! See the repository's `README.md` for a crate map, the quickstart and
//! the verification commands.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dice_bgp as bgp;
pub use dice_checkpoint as checkpoint;
pub use dice_core as core;
pub use dice_netsim as netsim;
pub use dice_obs as obs;
pub use dice_router as router;
pub use dice_solver as solver;
pub use dice_symexec as symexec;

/// Commonly used items across the DiCE stack.
pub mod prelude {
    pub use dice_bgp::attributes::RouteAttrs;
    pub use dice_bgp::message::{BgpMessage, UpdateMessage};
    pub use dice_bgp::prefix::Ipv4Prefix;
    pub use dice_bgp::route::{PeerId, Route};
    pub use dice_bgp::AsPath;
    pub use dice_checkpoint::{CheckpointManager, Checkpointable};
    pub use dice_core::{
        AsRelationship, BgpWedgieChecker, BlackholeChecker, CheckpointMode, CheckpointedRouter,
        ControlPlane, ControlSnapshot, CrossRoundFlapChecker, CustomerFilterMode, Dice,
        DiceBuilder, DiceConfig, DiceSession, ExplorationReport, Fault, FaultChecker, FaultKind,
        FaultPlanSearch, FaultScenario, FleetExplorer, FleetFault, FleetReport,
        ForwardingLoopChecker, IngestCounters, LiveFault, LiveOrchestrator, LiveReport, LiveRound,
        MoreSpecificHijackChecker, OriginHijackChecker, ReproBundle, ReproReplay, RoundCheckpoint,
        RoundOutcomes, RouteLeakChecker, RouteOscillationChecker, SearchCounters, SearchReport,
        SearchSummary, SharedCoreScheduler, SpecKindMask, UpdateTemplate, CONTROL_SCHEMA_VERSION,
    };
    pub use dice_netsim::topology::{
        addr, asn, figure2_topology, figure2_topology_with_customer_filter, NodeId, Topology,
    };
    pub use dice_netsim::{generate_trace, Replayer, Simulator, TraceGenConfig};
    pub use dice_netsim::{
        synthesize_wire_trace, IngestError, IngestStats, SharedIngestStats, WireRecord,
        WireReplayDriver, WireTrace,
    };
    pub use dice_netsim::{
        DeliveryError, FaultPlan, FaultSpec, FaultTrace, InjectedFault, InjectedFaultKind,
    };
    pub use dice_obs::{
        BufferedRecorder, Histogram, HistogramSummary, NoopSink, PrometheusText, SinkGuard,
        TraceSink,
    };
    pub use dice_router::{BgpRouter, NeighborConfig, RouterConfig};
    pub use dice_symexec::{ConcolicEngine, EngineConfig, ExecCtx, InputValues};
}

#[cfg(test)]
mod tests {
    /// Every item the prelude lists resolves, constructs, and has exactly
    /// one canonical path (the `use` below would be ambiguous otherwise).
    #[test]
    fn prelude_reexports_resolve_and_construct() {
        use crate::prelude::*;

        let _ = RouteAttrs::default();
        let _ = BgpMessage::Keepalive;
        let _ = UpdateMessage::withdraw(Vec::new());
        let prefix: Ipv4Prefix = "10.0.0.0/8".parse().expect("valid");
        let _ = Route::new(prefix, RouteAttrs::default(), PeerId(1), 1);
        let _ = AsPath::from_sequence([64_512]);
        fn assert_checkpointable<T: Checkpointable>() {}
        assert_checkpointable::<CheckpointedRouter>();
        let _ = CustomerFilterMode::Correct;
        let dice =
            Dice::with_config(DiceConfig::default().with_checkpoint_mode(CheckpointMode::CowRound));
        let _: &DiceConfig = dice.config();
        let _ = ExplorationReport::default();
        let _: Option<Fault> = None;
        let _: Option<FaultKind> = None;
        let _ = OriginHijackChecker::new();
        let session: DiceSession = DiceBuilder::new()
            .checker(Box::new(ForwardingLoopChecker::new()))
            .build();
        let fleet = FleetExplorer::new(session).with_core_budget(1);
        let _: &DiceSession = fleet.session();
        let _: Option<FleetFault> = None;
        let _ = FleetReport::default();
        let _ = RouteOscillationChecker::new().with_min_transitions(3);
        let _ = RouteLeakChecker::new()
            .with_customer(17_557)
            .with_peer(1_299)
            .with_provider(3_491);
        let _: Option<AsRelationship> = None;
        let _ = MoreSpecificHijackChecker::new();
        let _ = BlackholeChecker::new();
        let _ = CrossRoundFlapChecker::new().with_min_transitions(2);
        let _ = BgpWedgieChecker::new().with_min_stable_rounds(2);
        let _: Option<RoundOutcomes> = None;
        let plan = FaultPlan::new(7).with_spec(FaultSpec::LinkFlap {
            a: NodeId(0),
            b: NodeId(1),
            down_epoch: 1,
            up_epoch: 2,
        });
        assert!(!plan.is_empty());
        let _ = FaultTrace::default();
        let _: Option<InjectedFault> = None;
        let _: Option<InjectedFaultKind> = None;
        let _: Option<DeliveryError> = None;
        let live = LiveOrchestrator::default()
            .with_core_budget(1)
            .with_quiesce_steps(50)
            .with_max_rounds(2)
            .with_fault_plan(plan)
            .with_live_history(8);
        let _: &FleetExplorer = live.explorer();
        let _: Option<LiveFault> = None;
        let _: Option<LiveRound> = None;
        let _ = LiveReport::default();
        let search = FaultPlanSearch::new(LiveOrchestrator::default())
            .with_seed(7)
            .with_budget(0)
            .with_max_specs(4)
            .with_epoch_horizon(3)
            .with_spec_kinds(SpecKindMask::only_partitions());
        let _: &LiveOrchestrator = search.orchestrator();
        let _ = SpecKindMask::all();
        let _: Option<Box<dyn FaultScenario>> = None;
        let _ = SearchReport::default();
        let _ = SearchSummary::default();
        let _ = SearchCounters::default();
        let _: Option<ReproBundle> = None;
        let _: Option<ReproReplay> = None;
        let _ = figure2_topology_with_customer_filter(dice_router::policy::FilterDef::accept_all(
            "customer_in",
        ));
        let _ = NodeId(0);
        let _ = Topology::new();
        fn assert_checker<T: FaultChecker>() {}
        assert_checker::<OriginHijackChecker>();
        let _ = SharedCoreScheduler::baseline();
        let observed = UpdateMessage::announce(vec![prefix], &RouteAttrs::default());
        let _ = UpdateTemplate::from_update(&observed);
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let _ = topo.node_by_name("Provider");
        let _ = (addr::CUSTOMER, asn::CUSTOMER);
        let config = TraceGenConfig::tiny();
        let trace = generate_trace(&config, asn::INTERNET, addr::INTERNET);
        let _ = Replayer::new(&trace, addr::INTERNET);
        let _ = Simulator::new(&topo);
        let spec = &topo.nodes()[0];
        let router = BgpRouter::new(spec.config.clone());
        let _: &RouterConfig = router.config();
        let _ = CheckpointManager::new(CheckpointedRouter(router.clone()));
        let _ = RoundCheckpoint::capture(&router).share_count();
        let _: Option<&NeighborConfig> = spec.config.neighbors.first();
        let _ = ConcolicEngine::with_config(EngineConfig::default());
        let _ = ExecCtx::new();
        let _ = InputValues::new().with("x", 1);

        let mut wire = WireTrace::new();
        wire.push_update(
            0,
            NodeId(0),
            addr::INTERNET,
            &UpdateMessage::withdraw(Vec::new()),
        );
        let _: Option<&WireRecord> = wire.records.first();
        let _ = WireTrace::from_bytes(&wire.to_bytes()).expect("round-trips");
        let _ = synthesize_wire_trace(&config, NodeId(0), asn::INTERNET, addr::INTERNET);
        let driver = WireReplayDriver::new(wire)
            .with_frames_per_epoch(4)
            .with_epoch_ms(250);
        let shared: SharedIngestStats = driver.stats();
        let _: IngestStats = shared.snapshot();
        let _ = IngestError::BadMagic;
        let plane = ControlPlane::new();
        plane.publish(ControlSnapshot::default());
        let snapshot = plane.sample();
        assert_eq!(snapshot.schema_version, CONTROL_SCHEMA_VERSION);
        let _ = IngestCounters::default();

        let mut histogram = Histogram::new();
        histogram.record(1);
        let _: HistogramSummary = histogram.summary();
        let _ = PrometheusText::new();
        fn assert_sink<T: TraceSink>() {}
        assert_sink::<NoopSink>();
        assert_sink::<BufferedRecorder>();
        let _: Option<SinkGuard> = None;
    }
}
