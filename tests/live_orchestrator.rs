//! End-to-end tests of continuous ("live") exploration: the
//! `LiveOrchestrator` interleaving simulation progress with exploration
//! rounds, its equivalence anchor against `FleetExplorer`, and the class
//! of temporal faults — route oscillation — that only continuous rounds
//! can catch.

use dice::prelude::*;
use dice::router::policy::parse_filter;
use std::net::Ipv4Addr;

fn announcement(prefix: &str, path: &[u32], next_hop: Ipv4Addr) -> BgpMessage {
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence(path.iter().copied());
    attrs.next_hop = next_hop;
    BgpMessage::Update(UpdateMessage::announce(
        vec![prefix.parse().expect("valid")],
        &attrs,
    ))
}

fn two_checker_session() -> DiceSession {
    DiceBuilder::new()
        .checker(Box::new(OriginHijackChecker::new()))
        .checker(Box::new(RouteOscillationChecker::new()))
        .build()
}

/// The acceptance anchor: a single-round live run over a quiesced
/// simulator is byte-identical (per report digest) to `FleetExplorer`
/// over the same inputs — the orchestrator adds scheduling, never
/// different results.
#[test]
fn single_round_live_run_matches_fleet_exploration_byte_for_byte() {
    let topo = figure2_topology(CustomerFilterMode::Erroneous);
    let provider = topo.node_by_name("Provider").expect("node");
    let mut sim = Simulator::new(&topo);
    sim.inject(
        provider,
        addr::INTERNET,
        announcement(
            "208.65.152.0/22",
            &[asn::INTERNET, 3356, asn::VICTIM],
            addr::INTERNET,
        ),
    );
    sim.run_to_quiescence(100);
    sim.inject(
        provider,
        addr::CUSTOMER,
        announcement(
            "41.1.0.0/16",
            &[asn::CUSTOMER, asn::CUSTOMER],
            addr::CUSTOMER,
        ),
    );
    sim.run_to_quiescence(100);

    let session = two_checker_session();
    let fleet = FleetExplorer::new(session.clone()).explore(&sim);
    let live = LiveOrchestrator::new(session).run(&mut sim, |_, _| false);

    assert_eq!(live.rounds.len(), 1);
    assert_eq!(live.rounds[0].report.digest(), fleet.digest());
    assert!(live.has_faults(), "the provider leak is detected:\n{live}");
    assert_eq!(live.faults.len(), fleet.faults.len());
    for (lf, ff) in live.faults.iter().zip(&fleet.faults) {
        assert_eq!(lf.fault, ff.fault);
        assert_eq!(lf.nodes, ff.nodes);
        assert_eq!(lf.rounds, vec![0]);
    }
}

/// The temporal-fault acceptance test: live traffic installs a route,
/// exploration runs a round *while it is installed*, then the route is
/// withdrawn. The mid-run round sees the node alternately announce and
/// revoke the prefix (route oscillation); a single harvested round over
/// the final state — where the route is long gone — cannot.
#[test]
fn multi_round_live_run_detects_an_oscillation_a_single_round_misses() {
    // A customer import filter gated on attributes only: exploratory
    // variants keep the announced prefix but flip the verdict, so with the
    // route installed the node would flap it.
    let filter = parse_filter(
        r#"filter customer_in {
            if source_as = 17557 then accept;
            if med > 100 then accept;
            reject;
        }"#,
    )
    .expect("valid filter");
    let topo = figure2_topology_with_customer_filter(filter);
    let provider = topo.node_by_name("Provider").expect("node");
    let mut sim = Simulator::new(&topo);

    let flap_prefix: Ipv4Prefix = "41.1.0.0/16".parse().expect("valid");
    // Log compaction is disabled because this test deliberately
    // re-harvests the same simulator afterwards with a one-shot fleet
    // round, which needs the full delivery log.
    let live = LiveOrchestrator::new(two_checker_session())
        .with_log_compaction(false)
        .run(&mut sim, |sim, epoch| {
            match epoch {
                // Epoch 0: the customer announces its block; the filter
                // accepts it and the provider installs it.
                0 => {
                    sim.inject(
                        provider,
                        addr::CUSTOMER,
                        announcement(
                            "41.1.0.0/16",
                            &[asn::CUSTOMER, asn::CUSTOMER],
                            addr::CUSTOMER,
                        ),
                    );
                    true
                }
                // Epoch 1: the customer withdraws it again — by the end of the
                // run the provider's table no longer holds the route.
                _ => {
                    sim.inject(
                        provider,
                        addr::CUSTOMER,
                        BgpMessage::Update(UpdateMessage::withdraw(vec![flap_prefix])),
                    );
                    false
                }
            }
        });

    // The route is gone from the live table...
    assert!(sim
        .router(provider)
        .rib()
        .best_route(&flap_prefix)
        .is_none());
    // ...but the round that ran while it was installed caught the flap.
    let oscillation = live
        .faults
        .iter()
        .find(|f| f.fault.checker == "route-oscillation")
        .unwrap_or_else(|| panic!("live run must catch the oscillation:\n{live}"));
    assert_eq!(oscillation.fault.leaked_prefix(), flap_prefix);
    assert_eq!(oscillation.rounds, vec![0], "caught by the mid-run round");
    assert!(oscillation.nodes.contains(&provider));

    // A single harvested round over the very same (final) simulator state
    // explores the same observed inputs but checkpoints a table without
    // the route: rejected variants revoke nothing, no announce/withdraw
    // alternation exists, the oscillation is invisible.
    let one_shot = FleetExplorer::new(two_checker_session()).explore(&sim);
    assert!(
        one_shot
            .faults
            .iter()
            .all(|f| f.fault.checker != "route-oscillation"),
        "a single end-of-run round cannot see the temporal fault:\n{one_shot}"
    );
    // Not because nothing was explored: the announcement is still in the
    // log and still harvested.
    assert!(one_shot.node(provider).expect("provider explored").runs > 0);

    // The live run's digest is stable across identical reruns.
    let mut sim2 = Simulator::new(&topo);
    let rerun =
        LiveOrchestrator::new(two_checker_session()).run(&mut sim2, |sim, epoch| match epoch {
            0 => {
                sim.inject(
                    provider,
                    addr::CUSTOMER,
                    announcement(
                        "41.1.0.0/16",
                        &[asn::CUSTOMER, asn::CUSTOMER],
                        addr::CUSTOMER,
                    ),
                );
                true
            }
            _ => {
                sim.inject(
                    provider,
                    addr::CUSTOMER,
                    BgpMessage::Update(UpdateMessage::withdraw(vec![flap_prefix])),
                );
                false
            }
        });
    assert_eq!(rerun.digest(), live.digest());
}
