//! End-to-end observability: a live run traced through the buffered
//! recorder produces a loadable Chrome trace and a valid Prometheus
//! exposition, publishes v2 latency summaries on the control plane, and —
//! the tentpole invariant — reports byte-identical to an untraced run.

use std::sync::Arc;

use dice::obs::{chrome_trace_jsonl, validate_chrome_trace_jsonl, validate_prometheus_text};
use dice::prelude::*;

/// Drives two epochs of customer announcements through a Figure 2 live
/// orchestration and returns the report plus the final control snapshot.
fn live_run() -> (LiveReport, ControlSnapshot) {
    let topo = figure2_topology(CustomerFilterMode::Erroneous);
    let provider = topo.node_by_name("Provider").expect("node");
    let mut sim = Simulator::new(&topo);
    let session = DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(4))
        .build();
    let orchestrator = LiveOrchestrator::new(session).with_core_budget(1);
    let control = orchestrator.control_plane();
    let blocks = ["41.1.0.0/16", "41.64.0.0/12"];
    let report = orchestrator.run(&mut sim, |sim, epoch| {
        if let Some(block) = blocks.get(epoch) {
            let mut attrs = RouteAttrs::default();
            attrs.as_path = AsPath::from_sequence([17557, 17557]);
            attrs.next_hop = std::net::Ipv4Addr::new(10, 0, 1, 1);
            sim.inject(
                provider,
                addr::CUSTOMER,
                BgpMessage::Update(UpdateMessage::announce(
                    vec![block.parse().expect("valid")],
                    &attrs,
                )),
            );
        }
        epoch + 1 < blocks.len()
    });
    let snapshot = (*control.sample()).clone();
    (report, snapshot)
}

#[test]
fn traced_live_run_exports_chrome_and_prometheus_without_touching_reports() {
    let (baseline, _) = live_run();

    let recorder = Arc::new(BufferedRecorder::new());
    let (traced, snapshot) = {
        let _guard = SinkGuard::install(recorder.clone());
        live_run()
    };

    // Tentpole invariant: tracing never reaches a report.
    assert_eq!(baseline.digest(), traced.digest());

    // The recorder saw the whole stack: per-round orchestration phases,
    // simulator steps and solver queries.
    let events = recorder.drain();
    assert!(!events.is_empty());
    let scope_seen = |scope: &str| events.iter().any(|e| e.scope == scope);
    assert!(scope_seen("core"), "orchestration phases traced");
    assert!(scope_seen("netsim"), "simulator steps traced");
    assert!(scope_seen("solver"), "solver queries traced");
    assert!(scope_seen("symexec"), "solver waves traced");
    assert!(
        events.iter().any(|e| e.name == "live.harvest"),
        "harvest phase traced"
    );
    assert!(
        events.iter().any(|e| e.name == "live.check"),
        "temporal check phase traced"
    );

    // The Chrome export round-trips through the serde-free validator with
    // nothing lost.
    let jsonl = chrome_trace_jsonl(&events);
    let parsed = validate_chrome_trace_jsonl(&jsonl).expect("exported trace validates");
    assert_eq!(parsed.len(), events.len());

    // The control plane published the latency summaries (v2 lines, intact under v3)...
    assert_eq!(snapshot.schema_version, CONTROL_SCHEMA_VERSION);
    assert_eq!(snapshot.round_latency.count, snapshot.rounds as u64);
    assert!(snapshot.round_latency.max >= snapshot.round_latency.p50);
    let render = snapshot.render();
    assert!(render.starts_with("control-snapshot v3\n"));
    assert!(render.contains("round-latency n="));
    assert!(render.contains("wave-latency n="));
    assert!(render.contains("decode-latency n="));

    // ...and its Prometheus exposition parses against the text grammar.
    let exposition = snapshot.prometheus();
    validate_prometheus_text(&exposition).expect("exposition validates");
    assert!(exposition.contains("dice_rounds_total"));
    assert!(exposition.contains("dice_round_latency_seconds"));
}

#[test]
fn untraced_snapshot_still_carries_latency_summaries() {
    // No sink installed at all: summaries come from the report path, not
    // the trace path, so they are populated either way.
    let (report, snapshot) = live_run();
    assert!(report.rounds.len() >= 2);
    assert_eq!(snapshot.round_latency.count, report.rounds.len() as u64);
    assert!(snapshot.mean_round_latency > std::time::Duration::ZERO);
    validate_prometheus_text(&snapshot.prometheus()).expect("exposition validates");
}
