//! End-to-end wire-level replay: a live exploration run fed *entirely*
//! from serialized `WireTrace` bytes through `dice_bgp::wire::decode` —
//! no in-memory `UpdateMessage` ever reaches the simulator on that path —
//! must be byte-identical (per `LiveReport::digest`) to the same updates
//! delivered as structs, and the control plane must be observable mid-run.

use std::net::Ipv4Addr;
use std::sync::Arc;

use dice::prelude::*;

/// The figure-2 Erroneous scenario as one message per epoch: the victim's
/// table entry from the Internet, then two customer announcements the
/// erroneous filter admits.
fn scenario() -> Vec<(Ipv4Addr, BgpMessage)> {
    let announcement = |prefix: &str, path: &[u32], next_hop: Ipv4Addr| {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence(path.iter().copied());
        attrs.next_hop = next_hop;
        BgpMessage::Update(UpdateMessage::announce(
            vec![prefix.parse().expect("valid")],
            &attrs,
        ))
    };
    vec![
        (
            addr::INTERNET,
            announcement(
                "208.65.152.0/22",
                &[asn::INTERNET, 3356, asn::VICTIM],
                addr::INTERNET,
            ),
        ),
        (
            addr::CUSTOMER,
            announcement(
                "41.1.0.0/16",
                &[asn::CUSTOMER, asn::CUSTOMER],
                addr::CUSTOMER,
            ),
        ),
        (
            addr::CUSTOMER,
            announcement(
                "41.64.0.0/12",
                &[asn::CUSTOMER, asn::CUSTOMER],
                addr::CUSTOMER,
            ),
        ),
    ]
}

fn session() -> DiceSession {
    DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(8))
        .build()
}

#[test]
fn wire_fed_live_run_matches_in_memory_delivery_and_reports_status() {
    let topo = figure2_topology(CustomerFilterMode::Erroneous);
    let provider = topo.node_by_name("Provider").expect("node");
    let messages = scenario();

    // The wire path: every message encoded into a trace, the trace
    // serialized and re-parsed from raw bytes, then replayed one frame per
    // epoch strictly through the codec.
    let mut trace = WireTrace::new();
    for (epoch, (peer, msg)) in messages.iter().enumerate() {
        trace.push_message(epoch as u64 * 1000, provider, *peer, msg);
    }
    let trace = WireTrace::from_bytes(&trace.to_bytes()).expect("serialized trace parses");
    let mut driver = WireReplayDriver::new(trace).with_frames_per_epoch(1);

    let mut wire_sim = Simulator::new(&topo);
    let orchestrator = LiveOrchestrator::new(session()).with_ingest_stats(driver.stats());
    let plane = orchestrator.control_plane();
    assert_eq!(
        *plane.sample(),
        ControlSnapshot::default(),
        "before the run the plane holds the default snapshot"
    );
    let mut mid_run: Option<Arc<ControlSnapshot>> = None;
    let wire_report = orchestrator.run(&mut wire_sim, |sim, epoch| {
        if epoch == 2 {
            // Two rounds have completed; sample the way a sidecar would.
            mid_run = Some(plane.sample());
        }
        driver.drive(sim, epoch)
    });

    // The in-memory path: the same messages as structs, same epochs.
    let mut mem_sim = Simulator::new(&topo);
    let mem_report = LiveOrchestrator::new(session()).run(&mut mem_sim, |sim, epoch| {
        if let Some((peer, msg)) = messages.get(epoch) {
            sim.inject(provider, *peer, msg.clone());
        }
        epoch + 1 < messages.len()
    });

    assert_eq!(
        wire_report.digest(),
        mem_report.digest(),
        "wire-fed exploration must be byte-identical to in-memory delivery"
    );
    assert_eq!(wire_report.rounds.len(), 3);
    assert!(wire_report.has_faults());

    // The mid-run sample: nonzero ingest counters, round latencies and
    // solver stats under the stable schema version.
    let mid = mid_run.expect("driver sampled at epoch 2");
    assert_eq!(mid.schema_version, CONTROL_SCHEMA_VERSION);
    assert_eq!(mid.rounds, 2);
    assert_eq!(mid.ingest.frames, 2);
    assert_eq!(mid.ingest.decoded, 2);
    assert_eq!(mid.ingest.injected_updates, 2);
    assert_eq!(mid.ingest.decode_errors, 0);
    assert_eq!(mid.ingest.reencode_mismatches, 0);
    assert!(mid.ingest.bytes_consumed > 0);
    assert!(mid.ingest.updates_per_second > 0.0);
    assert!(mid.last_round_latency > std::time::Duration::ZERO);
    assert!(mid.mean_round_latency > std::time::Duration::ZERO);
    assert!(mid.solver_queries > 0);
    assert!(mid.solver_incremental_queries > 0);
    assert!(mid.solver_reuse_rate > 0.0);
    assert!(mid.delivered > 0);
    assert!(mid.compaction_watermark > 0);
    assert!(mid.cow.units_total > 0);

    // The final snapshot covers the whole run and renders stably.
    let last = plane.sample();
    assert_eq!(last.rounds, 3);
    assert_eq!(last.total_runs, wire_report.total_runs());
    assert_eq!(last.distinct_faults, wire_report.faults.len());
    assert_eq!(last.ingest.frames, 3);
    assert_eq!(last.compaction_watermark, wire_sim.observed_cursor());
    assert!(last.render().starts_with("control-snapshot v3\n"));
    assert!(last.render().contains("ingest frames=3 decoded=3"));
}

#[test]
fn corrupted_frames_surface_as_events_and_do_not_abort_the_run() {
    let topo = figure2_topology(CustomerFilterMode::Erroneous);
    let provider = topo.node_by_name("Provider").expect("node");
    let messages = scenario();

    let mut trace = WireTrace::new();
    for (epoch, (peer, msg)) in messages.iter().enumerate() {
        trace.push_message(epoch as u64 * 1000, provider, *peer, msg);
    }
    // Flip a marker byte of the middle frame: a decode error, not a panic.
    trace.records[1].bytes[5] = 0;

    let mut driver = WireReplayDriver::new(trace).with_frames_per_epoch(1);
    let stats = driver.stats();
    let mut sim = Simulator::new(&topo);
    let orchestrator = LiveOrchestrator::new(session()).with_ingest_stats(stats.clone());
    let plane = orchestrator.control_plane();
    let report = orchestrator.run(&mut sim, |sim, epoch| driver.drive(sim, epoch));

    let ingest = stats.snapshot();
    assert_eq!(ingest.frames, 3);
    assert_eq!(ingest.decoded, 2);
    assert_eq!(ingest.decode_errors, 1);
    assert_eq!(ingest.events.len(), 1);
    assert!(
        ingest.events[0].to_string().contains("decode failed"),
        "the event names the failure: {}",
        ingest.events[0]
    );

    let snapshot = plane.sample();
    assert_eq!(snapshot.ingest.decode_errors, 1);
    assert_eq!(snapshot.ingest.decoded, 2);
    // The two intact frames still drove exploration rounds.
    assert_eq!(report.rounds.len(), 2);
    assert!(report.has_faults());
}

#[test]
fn synthesized_trace_drives_a_live_run_from_bytes_alone() {
    let topo = figure2_topology(CustomerFilterMode::Correct);
    let provider = topo.node_by_name("Provider").expect("node");
    let config = TraceGenConfig {
        prefix_count: 24,
        update_count: 12,
        ..Default::default()
    };
    let trace = synthesize_wire_trace(&config, provider, asn::INTERNET, addr::INTERNET);
    assert_eq!(trace.len(), 36);
    let trace = WireTrace::from_bytes(&trace.to_bytes()).expect("parses");

    let mut driver = WireReplayDriver::new(trace).with_frames_per_epoch(12);
    let mut sim = Simulator::new(&topo);
    let orchestrator = LiveOrchestrator::new(session())
        .with_core_budget(2)
        .with_ingest_stats(driver.stats());
    let plane = orchestrator.control_plane();
    let report = orchestrator.run(&mut sim, |sim, epoch| driver.drive(sim, epoch));

    assert_eq!(report.rounds.len(), 3);
    let snapshot = plane.sample();
    assert_eq!(snapshot.ingest.frames, 36);
    assert_eq!(snapshot.ingest.decoded, 36);
    assert_eq!(snapshot.ingest.decode_errors, 0);
    assert_eq!(snapshot.ingest.reencode_mismatches, 0);
    assert!(snapshot.ingest.updates_per_second > 0.0);
    assert!(sim.router(provider).rib().prefix_count() > 0);
}
