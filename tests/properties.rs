//! Property-based tests over the core data structures and invariants,
//! spanning the protocol codec, the routing substrate, the concolic engine
//! and the checkpoint layer.

use proptest::prelude::*;

use dice::prelude::*;
use dice_bgp::attributes::{Community, Origin};
use dice_bgp::wire;
use dice_router::policy::{
    eval_filter, parse_filter, CmpOp, Expr, Field, FilterDef, PrefixPattern, RouteView, Stmt,
};
use dice_router::PrefixTrie;
use dice_solver::{Solver, TermArena};
use dice_symexec::{ExecCtx, CU32};

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(addr, len).expect("len <= 32"))
}

fn arb_attrs() -> impl Strategy<Value = RouteAttrs> {
    (
        prop::collection::vec(1u32..1_000_000, 1..6),
        0u8..=2,
        prop::option::of(any::<u32>()),
        prop::option::of(any::<u32>()),
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..4),
    )
        .prop_map(|(path, origin, med, local_pref, communities)| {
            let mut attrs = RouteAttrs::default();
            attrs.as_path = AsPath::from_sequence(path);
            attrs.origin = Origin::from_code(origin).expect("0..=2");
            attrs.med = med;
            attrs.local_pref = local_pref;
            attrs.next_hop = std::net::Ipv4Addr::new(192, 0, 2, 1);
            attrs.communities = communities
                .into_iter()
                .map(|(a, b)| Community::new(a, b))
                .collect();
            attrs
        })
}

fn arb_pattern() -> impl Strategy<Value = PrefixPattern> {
    (any::<u32>(), 0u8..=32, 0u8..=32, 0u8..=32).prop_map(|(addr, len, a, b)| {
        let prefix = Ipv4Prefix::new(addr, len).expect("len <= 32");
        PrefixPattern::with_range(prefix, a.min(b), a.max(b))
    })
}

fn arb_policy_expr() -> impl Strategy<Value = Expr> {
    let field = prop_oneof![
        Just(Field::SourceAs),
        Just(Field::NeighborAs),
        Just(Field::PathLen),
        Just(Field::Med),
        Just(Field::LocalPref),
        Just(Field::OriginCode),
        Just(Field::PrefixLen),
    ];
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    let leaf = prop_oneof![
        prop::collection::vec(arb_pattern(), 1..3).prop_map(Expr::NetMatch),
        (field, op, any::<u32>()).prop_map(|(field, op, value)| Expr::FieldCmp {
            field,
            op,
            value: value as u64,
        }),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Expr::CommunityMatch(a, b)),
        Just(Expr::True),
        Just(Expr::False),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_policy_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        Just(Stmt::Accept),
        Just(Stmt::Reject),
        (0u64..1000).prop_map(Stmt::SetLocalPref),
        (0u64..1000).prop_map(Stmt::SetMed),
        (0u64..4).prop_map(Stmt::Prepend),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Stmt::AddCommunity(a, b)),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        (
            arb_policy_expr(),
            prop::collection::vec(inner.clone(), 0..3),
            prop::collection::vec(inner, 0..2),
        )
            .prop_map(|(cond, then_branch, else_branch)| Stmt::If {
                id: 0,
                cond,
                then_branch,
                else_branch,
            })
    })
}

/// An arbitrary filter whose arm IDs carry the canonical pre-order
/// numbering ([`FilterDef::assign_arm_ids`]), as the parser would assign.
fn arb_policy_filter() -> impl Strategy<Value = FilterDef> {
    prop::collection::vec(arb_policy_stmt(), 1..4).prop_map(|body| {
        let mut filter = FilterDef {
            name: "f".into(),
            body,
        };
        filter.assign_arm_ids();
        filter
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Prefix parsing and display round-trip.
    #[test]
    fn prefix_display_parse_roundtrip(prefix in arb_prefix()) {
        let text = prefix.to_string();
        let parsed: Ipv4Prefix = text.parse().expect("display output parses");
        prop_assert_eq!(parsed, prefix);
    }

    /// UPDATE messages survive a wire encode/decode round-trip.
    #[test]
    fn update_wire_roundtrip(
        nlri in prop::collection::vec(arb_prefix(), 0..8),
        withdrawn in prop::collection::vec(arb_prefix(), 0..8),
        attrs in arb_attrs(),
    ) {
        let update = UpdateMessage {
            withdrawn,
            attributes: if nlri.is_empty() { Vec::new() } else { attrs.to_attributes() },
            nlri,
        };
        let bytes = wire::encode(&BgpMessage::Update(update.clone()));
        let (decoded, used) = wire::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, BgpMessage::Update(update));
    }

    /// Wire-trace round-trip: random valid updates → encode → serialize
    /// the trace → parse → decode each frame → re-encode, every stage byte
    /// identical. This is the contract `WireReplayDriver` enforces per
    /// frame at ingest time.
    #[test]
    fn wire_trace_roundtrips_byte_identically(
        msgs in prop::collection::vec(
            (
                any::<u64>(),
                prop::collection::vec(arb_prefix(), 0..6),
                prop::collection::vec(arb_prefix(), 0..6),
                arb_attrs(),
            ),
            1..12,
        ),
    ) {
        let mut trace = WireTrace::new();
        for (at_ms, nlri, withdrawn, attrs) in &msgs {
            let update = UpdateMessage {
                withdrawn: withdrawn.clone(),
                attributes: if nlri.is_empty() { Vec::new() } else { attrs.to_attributes() },
                nlri: nlri.clone(),
            };
            trace.push_update(*at_ms, NodeId(1), addr::CUSTOMER, &update);
        }
        let bytes = trace.to_bytes();
        let parsed = WireTrace::from_bytes(&bytes).expect("serialized trace parses");
        prop_assert_eq!(&parsed, &trace);
        prop_assert_eq!(parsed.to_bytes(), bytes);
        for record in &parsed.records {
            let (msg, used) = wire::decode(&record.bytes).expect("frame decodes");
            prop_assert_eq!(used, record.bytes.len());
            prop_assert_eq!(wire::encode(&msg).to_vec(), record.bytes.clone());
        }
    }

    /// The trie's longest-prefix match agrees with a naive linear scan.
    #[test]
    fn trie_matches_naive_longest_prefix_match(
        prefixes in prop::collection::vec(arb_prefix(), 1..40),
        ip in any::<u32>(),
    ) {
        let mut trie = PrefixTrie::new();
        for (i, p) in prefixes.iter().enumerate() {
            trie.insert(*p, i);
        }
        let expected = prefixes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.contains_ip(ip))
            .max_by_key(|(i, p)| (p.len(), std::cmp::Reverse(*i)))
            .map(|(_, p)| p.len());
        // On duplicate prefixes the later insert wins, so compare lengths.
        let got = trie.longest_match_ip(ip).map(|(p, _)| p.len());
        prop_assert_eq!(got, expected);
    }

    /// Concolic arithmetic mirrors concrete machine arithmetic.
    #[test]
    fn concolic_arithmetic_matches_concrete(a in any::<u32>(), b in any::<u32>()) {
        let mut ctx = ExecCtx::new();
        let sa = ctx.symbolic_u32("a", a);
        let cb = CU32::concrete(b);
        prop_assert_eq!(sa.add(&cb, &mut ctx).value(), a.wrapping_add(b));
        prop_assert_eq!(sa.sub(&cb, &mut ctx).value(), a.wrapping_sub(b));
        prop_assert_eq!(sa.mul(&cb, &mut ctx).value(), a.wrapping_mul(b));
        prop_assert_eq!(sa.bitand(&cb, &mut ctx).value(), a & b);
        prop_assert_eq!(sa.bitor(&cb, &mut ctx).value(), a | b);
        prop_assert_eq!(sa.lt(&cb, &mut ctx).value(), a < b);
        prop_assert_eq!(sa.eq(&cb, &mut ctx).value(), a == b);
    }

    /// Any model the solver returns actually satisfies the constraints it
    /// was asked to satisfy.
    #[test]
    fn solver_models_satisfy_their_constraints(lo in 0u32..5000, span in 1u32..5000, exclude in any::<u32>()) {
        let hi = lo.saturating_add(span);
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 32);
        let xv = arena.var(x);
        let lo_t = arena.int_const(lo as u64, 32);
        let hi_t = arena.int_const(hi as u64, 32);
        let ex_t = arena.int_const(exclude as u64, 32);
        let c1 = arena.uge(xv, lo_t);
        let c2 = arena.ule(xv, hi_t);
        let c3 = arena.ne(xv, ex_t);
        let constraints = [c1, c2, c3];
        let mut solver = Solver::new();
        let verdict = solver.solve(&mut arena, &constraints, None);
        // The range always contains at least two values, so excluding one
        // still leaves a model.
        let model = verdict.model().expect("satisfiable by construction");
        prop_assert!(model.satisfies_all(&arena, &constraints));
    }

    /// The filter interpreter gives the same verdict on concrete views and
    /// on symbolic views carrying the same concrete values.
    #[test]
    fn filter_concrete_and_symbolic_evaluation_agree(
        prefix in arb_prefix(),
        source_as in 1u32..100_000,
        med in 0u32..500,
    ) {
        let filter = parse_filter(
            r#"filter f {
                if net ~ [ 41.0.0.0/12{12,24}, 208.65.152.0/22{22,24} ] && source_as = 17557 then accept;
                if med > 100 then reject;
                if net.len > 24 then reject;
                accept;
            }"#,
        ).expect("parses");

        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([3491, source_as]);
        attrs.med = Some(med);
        let route = Route::new(prefix, attrs, PeerId(1), 1);

        let mut concrete_ctx = ExecCtx::new();
        let concrete = eval_filter(&filter, &RouteView::concrete(&route), &mut concrete_ctx);

        let mut sym_ctx = ExecCtx::new();
        let view = RouteView {
            prefix_addr: sym_ctx.symbolic_u32("nlri.addr", prefix.addr()),
            prefix_len: sym_ctx.symbolic_u8("nlri.len", prefix.len()),
            source_as: sym_ctx.symbolic_u32("attr.source_as", source_as),
            med: sym_ctx.symbolic_u32("attr.med", med),
            ..RouteView::concrete(&route)
        };
        let symbolic = eval_filter(&filter, &view, &mut sym_ctx);

        prop_assert_eq!(concrete.verdict, symbolic.verdict);
        prop_assert_eq!(concrete.local_pref, symbolic.local_pref);
        // Concrete evaluation records nothing; symbolic evaluation records
        // constraints satisfied by its own concrete values.
        prop_assert!(concrete_ctx.branches().is_empty());
        let constraints = sym_ctx.path_constraints();
        let model = sym_ctx.concrete_model().clone();
        prop_assert!(model.satisfies_all(sym_ctx.arena(), &constraints));
    }

    /// Printing a filter AST and re-parsing it preserves the structure
    /// *and the arm IDs*: a policy branch site is the same addressable
    /// exploration site whether the filter came from text or from a
    /// hand-built (then canonically renumbered) AST.
    #[test]
    fn policy_ast_display_parse_roundtrip_preserves_site_ids(filter in arb_policy_filter()) {
        let reparsed = parse_filter(&filter.to_string()).expect("display output re-parses");
        prop_assert_eq!(&reparsed, &filter);
        prop_assert_eq!(reparsed.sites(), filter.sites());
    }

    /// Concrete and symbolic evaluation of the same filter over the same
    /// route values take identical arm traces — same arms, same
    /// directions, in the same order — and the same verdict. Symbolic
    /// evaluation additionally registers every arm as a policy site;
    /// concrete evaluation registers nothing.
    #[test]
    fn policy_arm_traces_agree_between_concrete_and_symbolic(
        filter in arb_policy_filter(),
        prefix in arb_prefix(),
        attrs in arb_attrs(),
    ) {
        let route = Route::new(prefix, attrs, PeerId(1), 1);
        let mut concrete_ctx = ExecCtx::new();
        let concrete = eval_filter(&filter, &RouteView::concrete(&route), &mut concrete_ctx);

        let mut sym_ctx = ExecCtx::new();
        let base = RouteView::concrete(&route);
        let view = RouteView {
            prefix_addr: sym_ctx.symbolic_u32("nlri.addr", base.prefix_addr.value()),
            prefix_len: sym_ctx.symbolic_u8("nlri.len", base.prefix_len.value()),
            source_as: sym_ctx.symbolic_u32("attr.source_as", base.source_as.value()),
            med: sym_ctx.symbolic_u32("attr.med", base.med.value()),
            path_len: sym_ctx.symbolic_u32("attr.path_len", base.path_len.value()),
            community_slot: sym_ctx.symbolic_u32("attr.community", 0),
            ..base
        };
        let symbolic = eval_filter(&filter, &view, &mut sym_ctx);

        prop_assert_eq!(concrete.verdict, symbolic.verdict);
        let concrete_arms: Vec<(u32, bool)> =
            concrete.trace.iter().map(|t| (t.arm, t.taken)).collect();
        let symbolic_arms: Vec<(u32, bool)> =
            symbolic.trace.iter().map(|t| (t.arm, t.taken)).collect();
        prop_assert_eq!(concrete_arms, symbolic_arms);
        // Concrete traces never carry constraints; concrete contexts never
        // record branches or register sites.
        prop_assert!(concrete.trace.iter().all(|t| t.constraint.is_none()));
        prop_assert!(concrete_ctx.branches().is_empty());
        prop_assert!(concrete_ctx.policy_sites().is_empty());
        prop_assert_eq!(sym_ctx.policy_sites().len(), filter.branch_count());
    }

    /// Copy-on-write snapshots: unmodified forks share every page, and a
    /// fork never affects its parent's contents.
    #[test]
    fn checkpoint_forks_are_isolated(data in prop::collection::vec(any::<u8>(), 1..40_000), edit in any::<u8>()) {
        use dice_checkpoint::AddressSpace;
        let parent = AddressSpace::from_bytes(&data);
        let fork = parent.clone();
        prop_assert_eq!(fork.unique_pages_vs(&parent), 0);

        let mut modified = data.clone();
        let idx = modified.len() / 2;
        modified[idx] = modified[idx].wrapping_add(edit | 1);
        let mut fork = fork;
        fork.load(&modified);
        // The parent still reads back the original data.
        prop_assert_eq!(&parent.read_all()[..data.len()], &data[..]);
        prop_assert!(fork.unique_pages_vs(&parent) <= 1);
    }

    /// Generated exploratory UPDATE messages are always syntactically valid
    /// regardless of the assignment (paper §3.2).
    #[test]
    fn generated_updates_are_wire_valid(addr in any::<u64>(), len in any::<u64>(), origin in any::<u64>(), asn in any::<u64>()) {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([17557, 17557]);
        let observed = UpdateMessage::announce(vec!["41.1.0.0/16".parse().expect("valid")], &attrs);
        let template = UpdateTemplate::from_update(&observed).expect("announcement");
        let values = dice_symexec::InputValues::new()
            .with("nlri.addr", addr)
            .with("nlri.len", len)
            .with("attr.origin", origin)
            .with("attr.source_as", asn);
        let update = template.build_update(&values);
        let bytes = wire::encode(&BgpMessage::Update(update.clone()));
        let (decoded, _) = wire::decode(&bytes).expect("generated message is valid");
        prop_assert_eq!(decoded, BgpMessage::Update(update));
    }

    /// Windowed (epoch) harvesting partitions the delivery log losslessly:
    /// for any live traffic and any ascending sequence of harvest cursors,
    /// concatenating the per-window harvests reproduces the one-shot
    /// `observed_inputs` harvest — per node, in delivery order, nothing
    /// dropped, nothing duplicated. This is the invariant continuous
    /// orchestration (`LiveOrchestrator`) rests on.
    #[test]
    fn windowed_harvest_partitions_the_delivery_log(
        traffic in prop::collection::vec((0u32..16, any::<bool>()), 1..10),
        raw_cuts in prop::collection::vec(any::<u64>(), 0..8),
    ) {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let provider = topo.node_by_name("Provider").expect("node");
        let mut sim = Simulator::new(&topo);
        for (octet, from_customer) in traffic {
            let (from, origin) = if from_customer {
                (addr::CUSTOMER, asn::CUSTOMER)
            } else {
                (addr::INTERNET, asn::INTERNET)
            };
            let mut attrs = RouteAttrs::default();
            attrs.as_path = AsPath::from_sequence([origin, origin]);
            attrs.next_hop = from;
            let prefix = Ipv4Prefix::new((41 << 24) | (octet << 16), 16).expect("len <= 32");
            sim.inject(
                provider,
                from,
                BgpMessage::Update(UpdateMessage::announce(vec![prefix], &attrs)),
            );
            sim.run_to_quiescence(100);
        }

        // Arbitrary ascending cut points spanning the whole log.
        let head = sim.observed_cursor();
        let mut cuts: Vec<u64> = raw_cuts.into_iter().map(|c| c % (head + 1)).collect();
        cuts.push(0);
        cuts.push(head);
        cuts.sort_unstable();
        cuts.dedup();

        for node in 0..sim.len() {
            let node = NodeId(node);
            let mut windowed = Vec::new();
            for pair in cuts.windows(2) {
                windowed.extend(sim.observed_inputs_in(node, pair[0], pair[1]));
            }
            prop_assert_eq!(windowed, sim.observed_inputs(node), "node {}", node.0);
        }
    }

    /// A sharded RIB is observationally identical to an unsharded one:
    /// for any interleaving of announcements and withdrawals, every shard
    /// count reports the same per-operation changes, the same counters,
    /// the same Loc-RIB contents *in the same canonical order*, and the
    /// same longest-prefix-match answers. Sharding is purely a
    /// parallelism/copy-on-write optimisation.
    #[test]
    fn sharded_rib_is_observationally_identical_to_one_shard(
        ops in prop::collection::vec(
            // (announce?, prefix selector, length selector, peer, path tail)
            (any::<bool>(), any::<u32>(), 0u8..=32, 1u32..5, 1u32..50),
            1..80,
        ),
        probe_ips in prop::collection::vec(any::<u32>(), 1..8),
    ) {
        use dice_router::{Rib, RibChange};

        // A small prefix pool (coarse address grid) so withdrawals and
        // re-announcements frequently hit existing entries.
        let materialize = |sel: u32, len: u8| {
            Ipv4Prefix::new((sel % 64) << 26 | (sel % 7) << 13, len).expect("len <= 32")
        };
        let mut reference = Rib::with_shard_count(1);
        let mut sharded: Vec<Rib> = [4usize, 64].iter().map(|&n| Rib::with_shard_count(n)).collect();
        sharded.push(Rib::new()); // the core-sized default

        for &(announce, sel, len, peer, tail) in &ops {
            let prefix = materialize(sel, len);
            if announce {
                let mut attrs = RouteAttrs::default();
                attrs.as_path = AsPath::from_sequence([1299, 100_000 + tail]);
                attrs.next_hop = std::net::Ipv4Addr::new(10, 0, 2, 1);
                let route = Route::new(prefix, attrs, PeerId(peer), peer);
                let expected = reference.announce(route.clone());
                for rib in &mut sharded {
                    prop_assert_eq!(&rib.announce(route.clone()), &expected);
                }
            } else {
                let expected = reference.withdraw(&prefix, PeerId(peer));
                for rib in &mut sharded {
                    prop_assert_eq!(&rib.withdraw(&prefix, PeerId(peer)), &expected);
                }
            }
            // Exercised inline so RibChange is used even when all ops are
            // announcements.
            let _ = RibChange::Unchanged.is_change();
        }

        let expected_loc: Vec<(Ipv4Prefix, Route)> =
            reference.loc_rib().map(|(p, r)| (p, r.clone())).collect();
        for rib in &sharded {
            prop_assert_eq!(rib.prefix_count(), reference.prefix_count());
            prop_assert_eq!(rib.route_count(), reference.route_count());
            prop_assert_eq!(rib.approx_size_bytes(), reference.approx_size_bytes());
            let loc: Vec<(Ipv4Prefix, Route)> =
                rib.loc_rib().map(|(p, r)| (p, r.clone())).collect();
            prop_assert_eq!(&loc, &expected_loc, "canonical order diverged at {} shards", rib.shard_count());
            for &ip in &probe_ips {
                prop_assert_eq!(
                    rib.lookup_ip(ip).map(|r| (r.prefix, r.learned_from)),
                    reference.lookup_ip(ip).map(|r| (r.prefix, r.learned_from))
                );
                let probe = Ipv4Prefix::new(ip, 26).expect("len <= 32");
                prop_assert_eq!(
                    rib.best_covering_route(&probe).map(|r| r.prefix),
                    reference.best_covering_route(&probe).map(|r| r.prefix)
                );
            }
        }
    }

    /// Fleet-wide fault deduplication is lossless: every fault present in
    /// any per-node report is represented in the merged list (same fleet
    /// key), every representative carries provenance, and no two merged
    /// entries share a key.
    #[test]
    fn fleet_dedup_never_drops_a_fault(
        per_node in prop::collection::vec(
            prop::collection::vec((0u32..8, 0u32..4, 0u32..3, 0u8..2), 0..6),
            1..5,
        ),
    ) {
        use dice::core::{dedup_fleet_faults, FaultKind};
        use dice_bgp::Asn;

        // Synthesize per-node reports from small tuples so collisions
        // within and across nodes are common.
        let reports: Vec<ExplorationReport> = per_node
            .iter()
            .map(|faults| ExplorationReport {
                faults: faults
                    .iter()
                    .map(|&(block, origin, existing, checker)| {
                        let announced =
                            Ipv4Prefix::new(block << 24, 24).expect("len <= 32");
                        let kind = FaultKind::PotentialHijack {
                            announced,
                            claimed_origin: Asn(64_512 + origin),
                            existing_prefix: announced,
                            existing_origin: Asn(65_000 + existing),
                        };
                        Fault::new(if checker == 0 { "origin-hijack" } else { "other" }, kind)
                    })
                    .collect(),
                ..Default::default()
            })
            .collect();
        let keyed: Vec<(NodeId, &ExplorationReport)> = reports
            .iter()
            .enumerate()
            .map(|(i, r)| (NodeId(i), r))
            .collect();

        let merged = dedup_fleet_faults(&keyed);
        let merged_keys: Vec<_> = merged.iter().map(|f| f.fault.fleet_key()).collect();

        // Lossless: every sighting is represented, with its node recorded.
        for (node, report) in &keyed {
            for fault in &report.faults {
                let idx = merged_keys
                    .iter()
                    .position(|k| *k == fault.fleet_key());
                let Some(idx) = idx else {
                    panic!("fault {fault} dropped by fleet dedup");
                };
                prop_assert!(merged[idx].nodes.contains(node));
            }
        }
        // Deduplicated: keys are unique and provenance is first-sighting.
        for (i, key) in merged_keys.iter().enumerate() {
            prop_assert_eq!(merged_keys.iter().position(|k| k == key), Some(i));
            prop_assert_eq!(merged[i].fault.node, merged[i].nodes.first().copied());
        }
    }
}

/// Deterministic fault-injection properties: a [`FaultPlan`] is a pure
/// function of its specs and seed. Fewer cases than the blocks above —
/// each case drives full simulations (and live exploration rounds).
fn faulty_figure2_run(plan: FaultPlan) -> (String, String, dice_netsim::SimStats) {
    let topo = figure2_topology(CustomerFilterMode::Missing);
    let provider = topo.node_by_name("Provider").expect("node");
    let mut sim = Simulator::new(&topo).with_fault_plan(plan);
    let blocks = ["41.1.0.0/16", "41.64.0.0/12", "198.51.100.0/24"];
    for (epoch, block) in blocks.iter().enumerate() {
        sim.apply_epoch_faults(epoch as u64);
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([17557, 17557]);
        attrs.next_hop = std::net::Ipv4Addr::new(10, 0, 1, 1);
        sim.inject(
            provider,
            addr::CUSTOMER,
            BgpMessage::Update(UpdateMessage::announce(
                vec![block.parse().expect("valid")],
                &attrs,
            )),
        );
        sim.run_to_quiescence(100);
    }
    (
        format!("{:?}", sim.observed_log()),
        sim.fault_trace().digest(),
        sim.stats(),
    )
}

fn live_digest_under(plan: Option<FaultPlan>) -> String {
    let topo = figure2_topology(CustomerFilterMode::Missing);
    let provider = topo.node_by_name("Provider").expect("node");
    let mut sim = Simulator::new(&topo);
    let session = DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(4))
        .build();
    let mut orchestrator = LiveOrchestrator::new(session).with_core_budget(1);
    if let Some(plan) = plan {
        orchestrator = orchestrator.with_fault_plan(plan);
    }
    let blocks = ["41.1.0.0/16", "41.64.0.0/12"];
    orchestrator
        .run(&mut sim, |sim, epoch| {
            if let Some(block) = blocks.get(epoch) {
                let mut attrs = RouteAttrs::default();
                attrs.as_path = AsPath::from_sequence([17557, 17557]);
                attrs.next_hop = std::net::Ipv4Addr::new(10, 0, 1, 1);
                sim.inject(
                    provider,
                    addr::CUSTOMER,
                    BgpMessage::Update(UpdateMessage::announce(
                        vec![block.parse().expect("valid")],
                        &attrs,
                    )),
                );
            }
            epoch + 1 < blocks.len()
        })
        .digest()
}

fn arb_message_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), 0u32..=100, 0u32..=100, 0u32..=100, 1u64..4).prop_map(
        |(seed, p_drop, p_dup, p_reorder, ticks)| {
            let (p_drop, p_dup, p_reorder) = (
                f64::from(p_drop) / 100.0,
                f64::from(p_dup) / 100.0,
                f64::from(p_reorder) / 100.0,
            );
            let a = NodeId(1); // Provider
            let b = NodeId(2); // RestOfInternet
            FaultPlan::new(seed)
                .with_spec(FaultSpec::MessageDrop {
                    a,
                    b,
                    probability: p_drop,
                })
                .with_spec(FaultSpec::MessageDuplicate {
                    a,
                    b,
                    probability: p_dup,
                })
                .with_spec(FaultSpec::MessageReorder {
                    a,
                    b,
                    probability: p_reorder,
                    max_extra_ticks: ticks,
                })
        },
    )
}

fn arb_partition_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), 0usize..3, 0u64..2, prop::option::of(2u64..4)).prop_map(
        |(seed, node, cut_epoch, heal_epoch)| {
            let mut plan = FaultPlan::new(seed).with_spec(FaultSpec::Partition {
                nodes: vec![NodeId(node)],
                epoch: cut_epoch,
            });
            if let Some(epoch) = heal_epoch {
                plan = plan.with_spec(FaultSpec::Heal {
                    nodes: vec![NodeId(node)],
                    epoch,
                });
            }
            plan
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Replay contract: the same plan (specs + seed) over the same driver
    /// sequence reproduces the delivery log, the fault trace and the
    /// simulation counters byte for byte.
    #[test]
    fn fault_replay_is_byte_identical_for_same_plan_and_seed(plan in arb_message_plan()) {
        let first = faulty_figure2_run(plan.clone());
        let second = faulty_figure2_run(plan);
        prop_assert_eq!(first.0, second.0, "delivery logs diverged");
        prop_assert_eq!(first.1, second.1, "fault traces diverged");
        prop_assert_eq!(first.2, second.2, "stats diverged");
    }

    /// An empty plan — whatever its seed — injects nothing: the simulator
    /// log and the live exploration digest are byte-identical to a run
    /// with no plan installed at all.
    #[test]
    fn empty_fault_plan_leaves_every_digest_unchanged(seed in any::<u64>()) {
        let baseline = faulty_figure2_run(FaultPlan::default());
        let seeded = faulty_figure2_run(FaultPlan::new(seed));
        prop_assert_eq!(baseline.0, seeded.0);
        prop_assert_eq!(&seeded.1, "", "an empty plan records nothing");
        prop_assert_eq!(baseline.2, seeded.2);
    }

    /// The live orchestration path upholds both contracts end to end:
    /// same plan, same digest; empty plan, unperturbed digest.
    #[test]
    fn live_digests_are_replayable_and_fault_free_without_a_plan(plan in arb_message_plan(), seed in any::<u64>()) {
        prop_assert_eq!(
            live_digest_under(Some(plan.clone())),
            live_digest_under(Some(plan)),
            "faulty live runs must replay byte for byte"
        );
        prop_assert_eq!(
            live_digest_under(Some(FaultPlan::new(seed))),
            live_digest_under(None),
            "an empty plan must not change live exploration"
        );
    }

    /// Partition/heal specs uphold the same replay contract as the
    /// single-link specs: the multi-link sever (and its per-link session
    /// resets) is deterministic from the plan alone.
    #[test]
    fn partition_plans_replay_byte_identically(plan in arb_partition_plan()) {
        let first = faulty_figure2_run(plan.clone());
        let second = faulty_figure2_run(plan.clone());
        prop_assert_eq!(first.0, second.0, "delivery logs diverged");
        prop_assert_eq!(first.1, second.1, "fault traces diverged");
        prop_assert_eq!(first.2, second.2, "stats diverged");
        prop_assert_eq!(
            live_digest_under(Some(plan.clone())),
            live_digest_under(Some(plan)),
            "partitioned live runs must replay byte for byte"
        );
    }
}

/// One fleet round over a perturbed Figure 2 simulation: the fleet digest
/// plus each node's exploration digest, for the out-of-band tracing
/// property below.
fn fleet_digests_under(plan: FaultPlan) -> (String, Vec<String>) {
    let topo = figure2_topology(CustomerFilterMode::Missing);
    let provider = topo.node_by_name("Provider").expect("node");
    let mut sim = Simulator::new(&topo).with_fault_plan(plan);
    for (epoch, block) in ["41.1.0.0/16", "41.64.0.0/12"].iter().enumerate() {
        sim.apply_epoch_faults(epoch as u64);
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([17557, 17557]);
        attrs.next_hop = std::net::Ipv4Addr::new(10, 0, 1, 1);
        sim.inject(
            provider,
            addr::CUSTOMER,
            BgpMessage::Update(UpdateMessage::announce(
                vec![block.parse().expect("valid")],
                &attrs,
            )),
        );
        sim.run_to_quiescence(100);
    }
    let session = DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(4))
        .build();
    let fleet = FleetExplorer::new(session)
        .with_core_budget(1)
        .explore(&sim);
    let nodes = fleet.nodes.iter().map(|n| n.report.digest()).collect();
    (fleet.digest(), nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Tracing is out-of-band by construction: for any fault plan, every
    /// report digest — exploration, fleet and live — is byte-identical
    /// whether no sink is installed, the no-op sink is installed, or the
    /// buffered recorder is capturing every span. The recorder itself
    /// observes a non-empty, sequence-ordered event stream, proving the
    /// instrumentation actually fired while changing nothing.
    #[test]
    fn report_digests_are_identical_under_any_trace_sink(plan in arb_message_plan()) {
        use std::sync::Arc;

        let baseline_live = live_digest_under(Some(plan.clone()));
        let (baseline_fleet, baseline_nodes) = fleet_digests_under(plan.clone());

        let noop_live = {
            let _guard = SinkGuard::install(Arc::new(NoopSink));
            live_digest_under(Some(plan.clone()))
        };
        prop_assert_eq!(&baseline_live, &noop_live, "no-op sink changed a live digest");

        let recorder = Arc::new(BufferedRecorder::new());
        let (recorded_live, recorded_fleet, recorded_nodes) = {
            let _guard = SinkGuard::install(recorder.clone());
            let live = live_digest_under(Some(plan.clone()));
            let (fleet, nodes) = fleet_digests_under(plan);
            (live, fleet, nodes)
        };
        prop_assert_eq!(&baseline_live, &recorded_live, "recorder changed a live digest");
        prop_assert_eq!(&baseline_fleet, &recorded_fleet, "recorder changed a fleet digest");
        prop_assert_eq!(
            &baseline_nodes,
            &recorded_nodes,
            "recorder changed a node exploration digest"
        );

        let events = recorder.drain();
        prop_assert!(!events.is_empty(), "the live run emits spans");
        prop_assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
