//! End-to-end tests for deterministic fault injection as an exploration
//! dimension.
//!
//! The claim under test is the tentpole one: exploration under an injected
//! [`FaultPlan`] finds faults that quiescent-network exploration is
//! *structurally unable* to find. The scenario is a BGP session reset
//! between the Provider and its Customer scheduled mid-run: the reset
//! withdraws the customer block fleet-wide, the next live epoch re-announces
//! it, and the [`CrossRoundFlapChecker`] — running through the
//! [`LiveOrchestrator`]'s cross-round [`FaultChecker::check_live`] pass —
//! stitches the announce→withdraw→announce timeline no single round can
//! see. The identical run without the plan never observes the withdraw, so
//! the same checker provably stays silent.

use dice::prelude::*;
use std::net::Ipv4Addr;

fn announcement(prefix: &str, path: &[u32], next_hop: Ipv4Addr) -> BgpMessage {
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence(path.iter().copied());
    attrs.next_hop = next_hop;
    BgpMessage::Update(UpdateMessage::announce(
        vec![prefix.parse().expect("valid")],
        &attrs,
    ))
}

/// Runs the flap scenario: the customer announces its block at epoch 0,
/// epoch 1 carries no live traffic, and epoch 2 re-announces the same
/// block. With the session-reset plan, epoch 1 starts by resetting the
/// Provider↔Customer session, which withdraws the block everywhere.
fn run_flap_scenario(plan: Option<FaultPlan>) -> LiveReport {
    let topo = figure2_topology(CustomerFilterMode::Correct);
    let provider = topo.node_by_name("Provider").expect("node");
    let mut sim = Simulator::new(&topo);

    let session = DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(8))
        .checker(Box::new(CrossRoundFlapChecker::new()))
        .build();
    let mut orchestrator = LiveOrchestrator::new(session).with_core_budget(1);
    if let Some(plan) = plan {
        orchestrator = orchestrator.with_fault_plan(plan);
    }
    orchestrator.run(&mut sim, |sim, epoch| {
        if epoch != 1 {
            sim.inject(
                provider,
                addr::CUSTOMER,
                announcement(
                    "41.1.0.0/16",
                    &[asn::CUSTOMER, asn::CUSTOMER],
                    addr::CUSTOMER,
                ),
            );
        }
        epoch < 2
    })
}

fn reset_plan() -> FaultPlan {
    let topo = figure2_topology(CustomerFilterMode::Correct);
    let provider = topo.node_by_name("Provider").expect("node");
    let customer = topo.node_by_name("Customer").expect("node");
    FaultPlan::new(7).with_spec(FaultSpec::SessionReset {
        a: provider,
        b: customer,
        epoch: 1,
    })
}

#[test]
fn injected_session_reset_surfaces_a_flap_the_quiescent_run_provably_misses() {
    // With the plan: the reset's withdraw makes epoch 1 a real round, so
    // the Internet node's timeline reads announce, withdraw, announce —
    // two direction changes, and the temporal pass fires.
    let faulty = run_flap_scenario(Some(reset_plan()));
    let flap = faulty
        .faults
        .iter()
        .find(|f| f.fault.checker == "cross-round-flap")
        .unwrap_or_else(|| panic!("cross-round flap must be flagged:\n{faulty}"));
    assert_eq!(flap.fault.leaked_prefix().to_string(), "41.1.0.0/16");
    let topo = figure2_topology(CustomerFilterMode::Correct);
    let internet = topo.node_by_name("RestOfInternet").expect("node");
    assert_eq!(
        flap.nodes,
        vec![internet],
        "the flap is seen at the vantage"
    );
    assert_eq!(faulty.rounds.len(), 3, "the withdraw epoch became a round");
    assert!(faulty.injected_faults >= 1, "the reset was recorded");
    assert!(faulty.digest().contains("live-fault:cross-round flap"));
    assert!(faulty.digest().contains("injected-faults:"));
    assert!(faulty.to_string().contains("fault plan:"));

    // Identical run, no plan: epoch 1 observes nothing, no round executes,
    // every timeline is monotone — the same checker cannot fire. The gap
    // is structural, not a tuning artifact.
    let quiescent = run_flap_scenario(None);
    assert_eq!(quiescent.rounds.len(), 2, "the quiet epoch runs no round");
    assert!(
        !quiescent.has_faults(),
        "quiescent exploration cannot see the flap:\n{quiescent}"
    );
    assert_eq!(quiescent.injected_faults, 0);
    assert!(!quiescent.digest().contains("injected-faults"));
}

#[test]
fn an_empty_fault_plan_is_byte_identical_to_no_plan_at_all() {
    // The equivalence anchor: installing an empty plan (seed and all)
    // must not perturb a single byte of the live report digest.
    let without = run_flap_scenario(None);
    let with_empty = run_flap_scenario(Some(FaultPlan::default()));
    assert_eq!(with_empty.digest(), without.digest());
    let with_seeded_empty = run_flap_scenario(Some(FaultPlan::new(0xDEAD_BEEF)));
    assert_eq!(with_seeded_empty.digest(), without.digest());
}

#[test]
fn faulty_runs_replay_byte_for_byte_from_plan_and_seed() {
    let first = run_flap_scenario(Some(reset_plan()));
    let second = run_flap_scenario(Some(reset_plan()));
    assert_eq!(first.digest(), second.digest());
    assert_eq!(first.injected_faults, second.injected_faults);
}

#[test]
fn link_flap_plan_loses_epoch_traffic_and_is_counted_in_round_reports() {
    // A link flap between Provider and the Internet spanning epoch 1: the
    // announcement injected during the outage never reaches the Internet
    // node, and the round's FleetReport carries the injected-fault count.
    // Customer filtering is Missing so the provider re-advertises any
    // block — the epoch-1 update genuinely heads for the downed link.
    let topo = figure2_topology(CustomerFilterMode::Missing);
    let provider = topo.node_by_name("Provider").expect("node");
    let internet = topo.node_by_name("RestOfInternet").expect("node");
    let plan = FaultPlan::new(3).with_spec(FaultSpec::LinkFlap {
        a: provider,
        b: internet,
        down_epoch: 1,
        up_epoch: 2,
    });

    let mut sim = Simulator::new(&topo);
    let session = DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(8))
        .build();
    let live = LiveOrchestrator::new(session)
        .with_core_budget(1)
        .with_fault_plan(plan)
        .run(&mut sim, |sim, epoch| {
            let block = if epoch == 0 {
                "41.1.0.0/16"
            } else {
                "41.64.0.0/12"
            };
            sim.inject(
                provider,
                addr::CUSTOMER,
                announcement(block, &[asn::CUSTOMER, asn::CUSTOMER], addr::CUSTOMER),
            );
            epoch < 1
        });

    // Epoch 1's re-advertisement toward the Internet was dropped on the
    // downed link: the Internet node observed only the epoch-0 block.
    let internet_observed: Vec<_> = live
        .rounds
        .iter()
        .flat_map(|r| r.report.nodes.iter())
        .filter(|n| n.node == internet)
        .map(|n| n.report.observed_inputs)
        .collect();
    assert_eq!(internet_observed, vec![1, 0], "the outage ate the update");
    assert!(live.injected_faults >= 2, "link-down, link-up and the drop");
    let last = live.rounds.last().expect("rounds ran");
    assert!(last.report.injected_faults >= 2);
    assert!(last.report.digest().contains("injected-faults:"));
    assert!(last.report.to_string().contains("fault plan:"));
}
