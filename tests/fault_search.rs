//! End-to-end: coverage-guided fault-plan search discovers a BGP wedgie.
//!
//! The scenario is the Figure 2 topology with a *correctly missing* filter
//! (no checker fires on a quiescent run): the Customer announces its block
//! at epoch 0, and later epochs carry unrelated Internet-side traffic so
//! the fleet round clock keeps ticking. Partitioning the Customer makes
//! the Provider flush the customer-learned route and send an *observed*
//! withdrawal to the Internet — which then stays withdrawn forever: a
//! wedgie. The search, restricted to partition/heal specs and starting
//! from the empty plan, must discover this, shrink the triggering plan to
//! a 1-minimal repro, and replay it byte-identically.

use dice::prelude::*;

/// The healed-partition scenario described in the module docs.
struct WedgieScenario;

impl FaultScenario for WedgieScenario {
    fn build(&self) -> Simulator {
        Simulator::new(&figure2_topology(CustomerFilterMode::Missing))
    }

    fn drive(&self, sim: &mut Simulator, epoch: usize) -> bool {
        let provider = NodeId(1);
        let mut attrs = RouteAttrs::default();
        if epoch == 0 {
            attrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
            attrs.next_hop = addr::CUSTOMER;
            sim.inject(
                provider,
                addr::CUSTOMER,
                BgpMessage::Update(UpdateMessage::announce(
                    vec!["41.1.0.0/16".parse().expect("valid")],
                    &attrs,
                )),
            );
        } else {
            attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356]);
            attrs.next_hop = addr::INTERNET;
            let block = format!("198.51.{}.0/24", 99 + epoch);
            sim.inject(
                provider,
                addr::INTERNET,
                BgpMessage::Update(UpdateMessage::announce(
                    vec![block.parse().expect("valid")],
                    &attrs,
                )),
            );
        }
        epoch < 3
    }
}

fn wedgie_orchestrator() -> LiveOrchestrator {
    let session = DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(2))
        .checker(Box::new(BgpWedgieChecker::new()))
        .build();
    LiveOrchestrator::new(session).with_core_budget(1)
}

fn wedgie_search() -> FaultPlanSearch {
    FaultPlanSearch::new(wedgie_orchestrator())
        .with_seed(1)
        .with_budget(8)
        .with_epoch_horizon(3)
        .with_spec_kinds(SpecKindMask::only_partitions())
}

/// Re-runs `plan` through a fresh orchestrator over the scenario and
/// returns the fleet keys of every reported fault.
fn fault_keys_under(plan: FaultPlan) -> Vec<String> {
    let mut sim = WedgieScenario.build();
    let report = wedgie_orchestrator()
        .with_fault_plan(plan)
        .run(&mut sim, |sim, epoch| WedgieScenario.drive(sim, epoch));
    report
        .faults
        .iter()
        .map(|f| dice::core::fault_key(&f.fault))
        .collect()
}

#[test]
fn search_discovers_a_wedgie_the_empty_plan_control_never_shows() {
    let report = wedgie_search().run(&WedgieScenario);

    // The empty-plan control run is clean: the wedgie exists only in the
    // perturbed executions the search synthesized.
    assert!(
        report.baseline_fault_keys.is_empty(),
        "quiescent Figure 2 with the filter missing must be fault-free, got {:?}",
        report.baseline_fault_keys
    );
    assert!(
        !report.repros.is_empty(),
        "the search found no wedgie:\n{}",
        report.digest()
    );
    let repro = &report.repros[0];
    assert_eq!(repro.fault.checker, "bgp-wedgie");
    assert!(repro.fault_key.starts_with("bgp-wedgie|41.1.0.0/16|"));
    // Partitions-only mask: the minimized trigger is a partition spec,
    // not a bare session reset.
    assert!(repro
        .plan
        .specs()
        .iter()
        .all(|s| matches!(s, FaultSpec::Partition { .. } | FaultSpec::Heal { .. })));

    // The report's search counters flow into the baseline LiveReport.
    let summary = report.report.search.expect("search summary attached");
    assert_eq!(summary.plans_tried, 8);
    assert_eq!(summary.minimized_repros, report.repros.len() as u64);
    assert!(report.report.digest().contains("search:plans=8"));
}

#[test]
fn minimized_repros_are_one_minimal() {
    let report = wedgie_search().run(&WedgieScenario);
    assert!(!report.repros.is_empty(), "{}", report.digest());

    for repro in &report.repros {
        // The minimized plan itself still triggers.
        assert!(
            fault_keys_under(repro.plan.clone()).contains(&repro.fault_key),
            "minimized plan no longer triggers {}",
            repro.fault_key
        );
        // Removing any single spec loses the fault. (For a 1-spec plan
        // the reduced plan is empty — exactly the clean control run.)
        for index in 0..repro.plan.specs().len() {
            let mut reduced = FaultPlan::new(repro.plan.seed());
            for (i, spec) in repro.plan.specs().iter().enumerate() {
                if i != index {
                    reduced = reduced.with_spec(spec.clone());
                }
            }
            assert!(
                !fault_keys_under(reduced).contains(&repro.fault_key),
                "spec {index} of {} specs is removable: not 1-minimal",
                repro.plan.specs().len()
            );
        }
    }
}

#[test]
fn repro_bundles_replay_to_byte_identical_digests() {
    let search = wedgie_search();
    let report = search.run(&WedgieScenario);
    assert!(!report.repros.is_empty(), "{}", report.digest());

    for repro in &report.repros {
        let first = search.replay(&WedgieScenario, repro);
        let second = repro.replay(search.orchestrator(), &WedgieScenario);
        assert!(repro.matches(&first), "first replay diverged");
        assert_eq!(first.trace_digest, second.trace_digest);
        assert_eq!(first.live_digest, second.live_digest);
        assert_eq!(first.trace_digest, repro.expected_trace_digest);
        assert_eq!(first.live_digest, repro.expected_live_digest);
        assert!(!repro.topology_fingerprint.is_empty());
        assert_eq!(
            repro.topology_fingerprint,
            dice::core::topology_fingerprint(&WedgieScenario.build())
        );
    }
}

#[test]
fn a_search_is_deterministic_end_to_end() {
    let first = wedgie_search().run(&WedgieScenario);
    let second = wedgie_search().run(&WedgieScenario);
    assert_eq!(first.digest(), second.digest());
    assert_eq!(first.repros.len(), second.repros.len());
    for (a, b) in first.repros.iter().zip(&second.repros) {
        assert_eq!(a.plan.specs(), b.plan.specs());
        assert_eq!(a.expected_trace_digest, b.expected_trace_digest);
        assert_eq!(a.expected_live_digest, b.expected_live_digest);
        assert_eq!(a.expected_trace_fingerprint, b.expected_trace_fingerprint);
    }
}

#[test]
fn runs_without_search_render_no_search_fields() {
    // A plain orchestrator run must be byte-identical to what it was
    // before the search existed: no search line in the live digest, zeroed
    // appended counters in the snapshot, v2 field lines intact.
    let orchestrator = wedgie_orchestrator();
    let plane = orchestrator.control_plane();
    let mut sim = WedgieScenario.build();
    let report = orchestrator.run(&mut sim, |sim, epoch| WedgieScenario.drive(sim, epoch));

    assert!(report.search.is_none());
    assert!(!report.digest().contains("search:"));
    assert!(!report.to_string().contains("fault search"));

    let snapshot = plane.sample();
    let rendered = snapshot.render();
    assert!(rendered.contains("search plans=0 novel=0 repros=0"));
    assert!(rendered.starts_with("control-snapshot v3\n"));
    // The v2 field block still leads the render, byte-for-byte.
    assert!(rendered.contains(&format!(
        "rounds={} runs={} faults={} injected={} delivered={} watermark={}\n",
        snapshot.rounds,
        snapshot.total_runs,
        snapshot.distinct_faults,
        snapshot.injected_faults,
        snapshot.delivered,
        snapshot.compaction_watermark,
    )));

    // After a search over the same control plane, only the appended
    // counters change.
    let search_report = FaultPlanSearch::new(orchestrator)
        .with_seed(1)
        .with_budget(2)
        .with_epoch_horizon(3)
        .with_spec_kinds(SpecKindMask::only_partitions())
        .run(&WedgieScenario);
    let after = plane.sample();
    assert_eq!(after.search.plans, search_report.plans_tried as u64);
    assert_eq!(after.search.novel, search_report.novel_plans as u64);
}
