//! End-to-end integration tests spanning every crate: the Figure 2
//! topology, live simulation, DiCE exploration, fault detection and
//! isolation.

use dice::prelude::*;

/// Builds the Provider router with the victim /22 installed and returns it
/// together with the customer peer id and the observed customer update.
fn provider_scenario(mode: CustomerFilterMode) -> (BgpRouter, PeerId, UpdateMessage) {
    let topo = figure2_topology(mode);
    let provider = topo.node_by_name("Provider").expect("node");
    let mut router = BgpRouter::new(topo.nodes()[provider.0].config.clone());
    router.start();

    let internet = router.peer_by_address(addr::INTERNET).expect("peer");
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356, asn::VICTIM]);
    router.handle_update(
        internet,
        &UpdateMessage::announce(vec!["208.65.152.0/22".parse().expect("valid")], &attrs),
    );

    let customer = router.peer_by_address(addr::CUSTOMER).expect("peer");
    let mut cattrs = RouteAttrs::default();
    cattrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
    let observed = UpdateMessage::announce(vec!["41.1.0.0/16".parse().expect("valid")], &cattrs);
    (router, customer, observed)
}

#[test]
fn dice_detects_leak_that_the_live_network_would_suffer() {
    // Live network check: with the erroneous filter the hijack spreads.
    let topo = figure2_topology(CustomerFilterMode::Erroneous);
    let mut sim = Simulator::new(&topo);
    let provider = topo.node_by_name("Provider").expect("node");
    let internet_node = topo.node_by_name("RestOfInternet").expect("node");
    let mut cattrs = RouteAttrs::default();
    cattrs.as_path = AsPath::from_sequence([asn::CUSTOMER]);
    sim.inject(
        provider,
        addr::CUSTOMER,
        BgpMessage::Update(UpdateMessage::announce(
            vec!["208.65.153.0/24".parse().expect("valid")],
            &cattrs,
        )),
    );
    sim.run_to_quiescence(100);
    assert!(
        sim.router(internet_node)
            .rib()
            .best_route(&"208.65.153.0/24".parse().expect("valid"))
            .is_some(),
        "the erroneous filter lets the hijack reach the rest of the Internet"
    );

    // DiCE check: exploration of a *benign* observed update predicts the
    // same class of leak before it happens.
    let (router, customer, observed) = provider_scenario(CustomerFilterMode::Erroneous);
    let report = Dice::new().run_single(&router, customer, &observed);
    assert!(report.has_faults());
    assert!(report
        .leaked_prefixes()
        .iter()
        .any(|p| p.overlaps(&"208.65.152.0/22".parse().expect("valid"))));
}

#[test]
fn correct_configuration_passes_online_testing() {
    let (router, customer, observed) = provider_scenario(CustomerFilterMode::Correct);
    let report = Dice::new().run_single(&router, customer, &observed);
    assert!(!report.has_faults());
    assert!(
        report.branch_sites > 0,
        "the correct filter's branches were still explored"
    );
    assert!(
        report.runs > 1,
        "exploratory inputs beyond the seed were executed"
    );
}

#[test]
fn exploration_is_isolated_from_the_live_router() {
    let (router, customer, observed) = provider_scenario(CustomerFilterMode::Erroneous);
    let rib_before = router.rib().prefix_count();
    let routes_before = router.rib().route_count();
    let stats_before = *router.stats();

    let report = Dice::new().run_single(&router, customer, &observed);

    assert!(report.isolation_preserved);
    assert_eq!(router.rib().prefix_count(), rib_before);
    assert_eq!(router.rib().route_count(), routes_before);
    assert_eq!(*router.stats(), stats_before);
    assert!(
        report.intercepted_messages > 0,
        "exploratory messages were captured, not sent"
    );
}

#[test]
fn checkpoint_of_loaded_router_shares_memory_with_live_process() {
    use dice::prelude::{CheckpointManager, CheckpointedRouter};

    let (router, _, _) = provider_scenario(CustomerFilterMode::Erroneous);
    // Load a few thousand synthetic routes to give the image some weight.
    let trace = generate_trace(
        &TraceGenConfig {
            prefix_count: 3_000,
            update_count: 200,
            ..Default::default()
        },
        asn::INTERNET,
        addr::INTERNET,
    );
    let mut router = router;
    Replayer::new(&trace, addr::INTERNET).load_table(&mut router);

    let mut manager = CheckpointManager::new(CheckpointedRouter(router));
    let checkpoint = manager.take_checkpoint();
    assert_eq!(checkpoint.memory_stats_vs(manager.live()).unique_pages, 0);

    // Live processing of the incremental trace dirties only part of the image.
    let peer = manager
        .live()
        .state()
        .router()
        .peer_by_address(addr::INTERNET)
        .expect("peer");
    let updates: Vec<UpdateMessage> = trace.updates.iter().map(|e| e.update.clone()).collect();
    for u in &updates {
        manager
            .live_mut()
            .state_mut()
            .router_mut()
            .handle_update(peer, u);
    }
    manager.live_mut().sync();
    let stats = checkpoint.memory_stats_vs(manager.live());
    assert!(stats.unique_fraction() < 1.0);
    assert!(stats.total_pages > 10);
}

#[test]
fn full_table_load_and_replay_keep_router_consistent() {
    let (mut router, _, _) = provider_scenario(CustomerFilterMode::Correct);
    let trace = generate_trace(
        &TraceGenConfig {
            prefix_count: 2_000,
            update_count: 500,
            withdrawal_percent: 20,
            ..Default::default()
        },
        asn::INTERNET,
        addr::INTERNET,
    );
    let replayer = Replayer::new(&trace, addr::INTERNET);
    let load = replayer.load_table(&mut router);
    assert_eq!(load.rib_prefixes, router.rib().prefix_count());
    let replay = replayer.replay_updates(&mut router, |_| {});
    assert_eq!(replay.updates_fed, 500);
    // Every Loc-RIB entry still has a best route and a consistent origin.
    for (prefix, route) in router.rib().loc_rib() {
        assert_eq!(route.prefix, prefix);
        assert!(route.origin_as().is_some());
    }
}

#[test]
fn dice_report_is_reproducible_for_the_same_inputs() {
    let (router, customer, observed) = provider_scenario(CustomerFilterMode::Erroneous);
    let dice = Dice::new();
    let a = dice.run_single(&router, customer, &observed);
    let b = dice.run_single(&router, customer, &observed);
    assert_eq!(a.runs, b.runs);
    assert_eq!(a.distinct_paths, b.distinct_paths);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.leaked_prefixes(), b.leaked_prefixes());
}

/// The federated setting end to end through the umbrella crate: live
/// simulation over Figure 2, per-node input harvesting, one exploration
/// round beside every node through a two-checker session, fleet-wide
/// deduplication — with the single-node path asserted byte-identical to
/// legacy `Dice::run`.
#[test]
fn fleet_exploration_detects_the_leak_from_harvested_inputs() {
    let topo = figure2_topology(CustomerFilterMode::Erroneous);
    let provider = topo.node_by_name("Provider").expect("node");
    let mut sim = Simulator::new(&topo);

    // Live traffic: the Internet announces the victim prefix, then the
    // customer makes its routine announcement.
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356, 36561]);
    attrs.next_hop = addr::INTERNET;
    sim.inject(
        provider,
        addr::INTERNET,
        BgpMessage::Update(UpdateMessage::announce(
            vec!["208.65.152.0/22".parse().expect("valid")],
            &attrs,
        )),
    );
    sim.run_to_quiescence(100);
    let mut cattrs = RouteAttrs::default();
    cattrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
    cattrs.next_hop = addr::CUSTOMER;
    sim.inject(
        provider,
        addr::CUSTOMER,
        BgpMessage::Update(UpdateMessage::announce(
            vec!["41.1.0.0/16".parse().expect("valid")],
            &cattrs,
        )),
    );
    sim.run_to_quiescence(100);

    let session = DiceBuilder::new()
        .checker(Box::new(OriginHijackChecker::new()))
        .checker(Box::new(ForwardingLoopChecker::new()))
        .build();
    assert_eq!(
        session.checker_names(),
        ["origin-hijack", "forwarding-loop"]
    );
    let fleet = FleetExplorer::new(session).explore(&sim);

    assert_eq!(fleet.nodes.len(), 3, "every Figure 2 node explored");
    assert!(
        fleet.has_faults(),
        "the provider leak is detected:\n{fleet}"
    );
    assert!(fleet
        .faults
        .iter()
        .any(|f| f.fault.checker == "origin-hijack" && f.nodes.contains(&provider)));
    assert!(fleet.nodes.iter().all(|n| n.report.isolation_preserved));

    // The single-node fleet path is byte-identical to legacy Dice::run
    // over the same harvested inputs.
    let single = FleetExplorer::default().explore_nodes(&sim, &[provider]);
    let legacy = Dice::new().run(sim.router(provider), &sim.observed_inputs(provider));
    assert_eq!(single.nodes[0].report.digest(), legacy.digest());
}
