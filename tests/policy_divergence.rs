//! End-to-end divergence test for policy-AST symbolic branches: a buggy
//! import filter leaks a more-specific of the victim's prefix *only when a
//! specific community is attached*. No concrete trace ever carries that
//! community, so the leak is reachable only through a solver-synthesized
//! announcement — exactly the class of fault the policy-aware exploration
//! surface exists to find. The control arm runs the same round with the
//! policy fields disabled and must come back clean.

use dice::prelude::*;
use dice::router::policy::{encode_community, parse_filter, FilterDef};

/// The buggy customer filter: the first arm is the customer's legitimate
/// allocation; the second is a stale "emergency" exception that accepts
/// more-specifics of the victim's 208.65.152.0/22 whenever the operator
/// community 3491:666 is attached. The exception was never cleaned up, and
/// nothing in live traffic ever carries 3491:666.
fn buggy_filter() -> FilterDef {
    parse_filter(
        r#"filter customer_in {
            if net ~ [ 41.0.0.0/12{12,24} ] then accept;
            if community ~ (3491, 666) && net ~ [ 208.65.152.0/22{22,25} ] then accept;
            reject;
        }"#,
    )
    .expect("valid filter")
}

/// The Provider with the buggy filter, the victim /22 installed from the
/// Internet, and a benign observed customer announcement with no
/// communities attached.
fn scenario() -> (BgpRouter, PeerId, UpdateMessage) {
    let topo = figure2_topology_with_customer_filter(buggy_filter());
    let provider = topo.node_by_name("Provider").expect("node");
    let mut router = BgpRouter::new(topo.nodes()[provider.0].config.clone());
    router.start();

    let internet = router.peer_by_address(addr::INTERNET).expect("peer");
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356, asn::VICTIM]);
    router.handle_update(
        internet,
        &UpdateMessage::announce(vec!["208.65.152.0/22".parse().expect("valid")], &attrs),
    );

    let customer = router.peer_by_address(addr::CUSTOMER).expect("peer");
    let mut cattrs = RouteAttrs::default();
    cattrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
    let observed = UpdateMessage::announce(vec!["41.1.0.0/16".parse().expect("valid")], &cattrs);
    assert!(
        observed.route_attrs().communities.is_empty(),
        "the observed trace must not carry the gating community"
    );
    (router, customer, observed)
}

#[test]
fn solver_synthesized_community_exposes_the_gated_leak() {
    let (router, customer, observed) = scenario();
    let victim: Ipv4Prefix = "208.65.152.0/22".parse().expect("valid");

    let session = DiceBuilder::new().build();
    let report = session.explore(&router, &[(customer, observed.clone())]);
    assert!(
        report.has_faults(),
        "the community-gated leak must be found by synthesizing 3491:{}:\n{report}",
        encode_community(3491, 666) & 0xffff,
    );
    assert!(
        report.leaked_prefixes().iter().any(|p| p.overlaps(&victim)),
        "the fault names the victim's range:\n{report}"
    );

    // The policy surface is visible in the report: both filter arms are
    // registered (executed or not), coverage is over registered arms, and
    // the digest/display grow the policy segment.
    assert!(
        report.policy_sites >= 2,
        "both `if` arms registered as policy sites:\n{report}"
    );
    assert!(report.policy_branch_coverage() > 0.0);
    assert!(report.digest().contains(";policy_dirs="));
    assert!(report.to_string().contains("policy:"));
    assert!(
        report.solver_stats.policy_queries > 0,
        "negating the community arm is attributed as a policy query:\n{report}"
    );
    assert!(report.isolation_preserved);

    // Control: the same round with the policy-oriented symbolic fields
    // disabled. The community arm is opaque to the solver — no input it
    // can synthesize reaches the leak, so the round comes back clean.
    let opaque = DiceBuilder::new().symbolic_policy_fields(false).build();
    let opaque_report = opaque.explore(&router, &[(customer, observed)]);
    assert!(
        !opaque_report.has_faults(),
        "without the community slot the leak is unreachable:\n{opaque_report}"
    );
}
